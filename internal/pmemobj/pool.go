// Package pmemobj provides a PMDK/libpmemobj-like programming layer on top
// of the simulated device of package pmem: persistent pools with a root
// object, 16-byte persistent pointers, failure-atomic undo-log transactions
// and a segregated free-list allocator with group allocation.
//
// The package reproduces the cost structure the paper reasons about:
// allocations are expensive because they require logging and cache-line
// flushes (C5), persistent pointers need a translation step on every
// dereference (C6), and transactional updates pay undo-logging overhead
// (§5.1 "this comes with a small overhead").
package pmemobj

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"poseidon/internal/pmem"
)

// Errors returned by pool operations.
var (
	ErrOutOfMemory = errors.New("pmemobj: out of persistent memory")
	ErrLogFull     = errors.New("pmemobj: transaction undo log full")
	ErrBadPool     = errors.New("pmemobj: not a pmemobj pool")
	ErrBadFree     = errors.New("pmemobj: free of unallocated or corrupt block")
)

// Header layout (all fields 8 bytes, offsets in bytes from pool start).
const (
	hdrMagic    = 0
	hdrVersion  = 8
	hdrUUID     = 16
	hdrRoot     = 24
	hdrHeapTop  = 32
	hdrLogOff   = 40
	hdrLogCap   = 48
	hdrFreeHead = 64 // array of numClasses free-list heads

	poolMagic   = 0x504F534549444F4E // "POSEIDON"
	poolVersion = 1

	headerSize = hdrFreeHead + numClasses*8
)

// Pool is a persistent memory pool: a formatted region of a Device holding
// a root object, an allocator and an undo log.
type Pool struct {
	dev  *pmem.Device
	uuid uint64

	// mu serializes built-in-log transactions and allocator mutations.
	// Plain data reads/writes through the device do not take it, and lane
	// transactions (RunTxLane) serialize on their lane's own mutex.
	mu sync.Mutex

	logOff uint64
	logCap uint64

	// laneMu guards the lanes slice during attachment; steady-state lane
	// lookups read the slice without it (lanes are attached at open time,
	// before concurrent transactions start).
	laneMu sync.Mutex
	lanes  []*poolLane
}

// poolLane is an additional undo-log region with its own transaction
// mutex, giving the engine one independent failure-atomic commit pipeline
// per shard (the Blizzard-style per-shard persistence domain).
type poolLane struct {
	mu  sync.Mutex
	off uint64
	cap uint64
}

// AttachLane registers an undo-log lane backed by the caller-allocated
// region [logOff, logOff+logCap). If the region holds entries from a
// transaction in flight at a crash, they are rolled back first — callers
// must therefore attach every lane recorded in their durable metadata
// before writing any data the lane's pending transaction may cover.
// Returns the lane id for RunTxLane (≥ 1; lane 0 is the built-in log).
func (p *Pool) AttachLane(logOff, logCap uint64) (int, error) {
	if logCap < logDataStart+16 || logOff+logCap > uint64(p.dev.Size()) {
		return 0, fmt.Errorf("pmemobj: bad lane region [%d,+%d)", logOff, logCap)
	}
	if count := p.dev.ReadU64(logOff); count != 0 {
		p.applyUndoAt(logOff, count)
	}
	p.laneMu.Lock()
	defer p.laneMu.Unlock()
	p.lanes = append(p.lanes, &poolLane{off: logOff, cap: logCap})
	return len(p.lanes), nil
}

// lane returns the attached lane with the given id (≥ 1), or nil.
func (p *Pool) lane(id int) *poolLane {
	p.laneMu.Lock()
	defer p.laneMu.Unlock()
	if id < 1 || id > len(p.lanes) {
		return nil
	}
	return p.lanes[id-1]
}

// Lanes returns the number of attached undo-log lanes (excluding the
// built-in log).
func (p *Pool) Lanes() int {
	p.laneMu.Lock()
	defer p.laneMu.Unlock()
	return len(p.lanes)
}

// Device returns the underlying device for direct data access.
func (p *Pool) Device() *pmem.Device { return p.dev }

// UUID returns the pool's persistent identity.
func (p *Pool) UUID() uint64 { return p.uuid }

// Options configures pool creation.
type Options struct {
	// LogCap is the undo log capacity in bytes (default 1 MiB).
	LogCap uint64
	// UUID overrides the random pool identity (useful for deterministic
	// tests). Zero picks a random one.
	UUID uint64
}

// Create formats dev as a fresh pool and registers it. The device contents
// are assumed to be zero or garbage; everything is overwritten.
func Create(dev *pmem.Device, opts Options) (*Pool, error) {
	logCap := opts.LogCap
	if logCap == 0 {
		logCap = 256 << 10
	}
	logCap = align(logCap, pmem.LineSize)
	uuid := opts.UUID
	for uuid == 0 {
		uuid = rand.Uint64()
	}
	logOff := align(headerSize, pmem.LineSize)
	heapStart := align(logOff+logCap, pmem.BlockSize)
	if heapStart >= uint64(dev.Size()) {
		return nil, fmt.Errorf("%w: device too small for metadata", ErrOutOfMemory)
	}

	p := &Pool{dev: dev, uuid: uuid, logOff: logOff, logCap: logCap}
	dev.Zero(0, heapStart)
	dev.WriteU64(hdrUUID, uuid)
	dev.WriteU64(hdrRoot, 0)
	dev.WriteU64(hdrHeapTop, heapStart)
	dev.WriteU64(hdrLogOff, logOff)
	dev.WriteU64(hdrLogCap, logCap)
	dev.WriteU64(logOff, 0) // empty undo log
	dev.Persist(0, heapStart)
	// The magic is written last so a torn format attempt is detected as
	// "not a pool" rather than opened half-initialized.
	dev.WriteU64(hdrVersion, poolVersion)
	dev.WriteU64(hdrMagic, poolMagic)
	dev.Persist(0, 16)
	register(p)
	return p, nil
}

// Open validates an existing pool on dev, runs crash recovery (rolling
// back any in-flight transaction found in the undo log) and registers the
// pool.
func Open(dev *pmem.Device) (*Pool, error) {
	if dev.Size() < headerSize {
		return nil, ErrBadPool
	}
	if dev.ReadU64(hdrMagic) != poolMagic {
		return nil, ErrBadPool
	}
	if v := dev.ReadU64(hdrVersion); v != poolVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadPool, v)
	}
	p := &Pool{
		dev:    dev,
		uuid:   dev.ReadU64(hdrUUID),
		logOff: dev.ReadU64(hdrLogOff),
		logCap: dev.ReadU64(hdrLogCap),
	}
	if err := p.recover(); err != nil {
		return nil, err
	}
	p.recoverMWCAS()
	register(p)
	return p, nil
}

// Root returns the offset of the root object, or 0 if none was set.
func (p *Pool) Root() uint64 { return p.dev.ReadU64(hdrRoot) }

// LogCap returns the built-in undo log's capacity in bytes. Callers
// attaching lanes can size them to match, so any transaction that fits
// the built-in log fits a lane.
func (p *Pool) LogCap() uint64 { return p.logCap }

// LaneCap returns the undo-log capacity in bytes of the given lane
// (lane 0 is the built-in log; see LogHeaderBytes for the fixed header
// the capacity includes). Zero for unknown lanes. Group-commit leaders
// size epochs against this so a batch can never overflow its shard's
// lane mid-epoch.
func (p *Pool) LaneCap(id int) uint64 {
	if id == 0 {
		return p.logCap
	}
	l := p.lane(id)
	if l == nil {
		return 0
	}
	return l.cap
}

// SetRoot durably points the pool at its root object. The write is 8 bytes
// and therefore failure-atomic (C4).
func (p *Pool) SetRoot(off uint64) {
	p.dev.WriteU64(hdrRoot, off)
	p.dev.Persist(hdrRoot, 8)
}

// Close unregisters the pool from the runtime registry.
func (p *Pool) Close() { unregister(p) }

// LogPending returns the number of undo-log entries currently marked
// valid across the built-in log and every attached lane. After Open and
// AttachLane (which roll back any in-flight transaction) and outside a
// running transaction it must be zero; the fsck undo-log pass checks
// exactly that.
func (p *Pool) LogPending() uint64 {
	n := p.dev.ReadU64(p.logOff)
	p.laneMu.Lock()
	defer p.laneMu.Unlock()
	for _, l := range p.lanes {
		n += p.dev.ReadU64(l.off)
	}
	return n
}

func align(v, a uint64) uint64 { return (v + a - 1) / a * a }

// --- Persistent pointers (C6) ---

// PPtr is a PMDK-style 16-byte persistent pointer: a pool identity plus an
// offset within that pool. It stays valid across restarts, unlike a
// virtual address. Dereferencing requires a registry lookup, which is why
// design goal DG6 says to convert it to an offset or virtual reference
// once and reuse that.
type PPtr struct {
	Pool uint64
	Off  uint64
}

// IsNull reports whether the pointer is the null persistent pointer.
func (pp PPtr) IsNull() bool { return pp.Pool == 0 && pp.Off == 0 }

var registry struct {
	mu    sync.RWMutex
	pools map[uint64]*Pool
}

func register(p *Pool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if registry.pools == nil {
		registry.pools = make(map[uint64]*Pool)
	}
	registry.pools[p.uuid] = p
}

func unregister(p *Pool) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	delete(registry.pools, p.uuid)
}

// Resolve translates a persistent pointer into its pool, paying the
// registry-lookup cost that makes persistent pointers slower than plain
// offsets.
func Resolve(pp PPtr) (*Pool, uint64, error) {
	registry.mu.RLock()
	p := registry.pools[pp.Pool]
	registry.mu.RUnlock()
	if p == nil {
		return nil, 0, fmt.Errorf("pmemobj: unresolvable persistent pointer to pool %#x", pp.Pool)
	}
	return p, pp.Off, nil
}

// WritePPtr stores a persistent pointer as two consecutive 8-byte words at
// off. Note the 16-byte store is not failure-atomic; callers needing
// atomicity must snapshot it in a transaction (this is exactly the paper's
// argument for 8-byte offsets in DD2).
//
//pmem:deferred-flush primitive store helper; callers cover the 16 bytes with their undo log or an explicit Persist
func (p *Pool) WritePPtr(off uint64, pp PPtr) {
	p.dev.WriteU64(off, pp.Pool)
	p.dev.WriteU64(off+8, pp.Off)
}

// ReadPPtr loads a persistent pointer stored at off.
func (p *Pool) ReadPPtr(off uint64) PPtr {
	return PPtr{Pool: p.dev.ReadU64(off), Off: p.dev.ReadU64(off + 8)}
}
