//go:build !crashmutate

package pmemobj

// mutateSkipFlush deliberately weakens the commit protocol when the
// crashmutate build tag is set (see mutate_on.go). In normal builds it is
// a compile-time false, so the branch in tx.commit vanishes.
const mutateSkipFlush = false
