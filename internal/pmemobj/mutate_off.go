//go:build !crashmutate

package pmemobj

// The deliberate commit-protocol bugs (see mutate_on.go) are
// compile-time false in normal builds, so the branches in tx.commit and
// SnapshotAll vanish.
func mutateSkipFlush() bool { return false }

func mutateGroupFence() bool { return false }
