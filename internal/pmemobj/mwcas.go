package pmemobj

import (
	"fmt"
	"sync"
)

// Persistent multi-word compare-and-swap — the alternative §5.1 mentions
// for making commits failure-atomic without PMDK transactions ("using
// Multi-Word CaS instructions such as PMwCAS which allows atomically
// changing multiple 8-byte words on PMem").
//
// The implementation is descriptor-based: the operation's entries are
// made durable in a persistent descriptor before any target word is
// touched, and a single 8-byte status store is the linearization and
// failure-atomicity point:
//
//	statusIdle      → descriptor empty
//	statusPrepared  → entries durable, targets untouched (roll back = drop)
//	statusApplying  → new values are being installed (roll forward = redo)
//
// Recovery redoes an Applying descriptor and discards a Prepared one, so
// the swap is all-or-nothing across crashes. Unlike the lock-free PMwCAS
// of Wang et al., concurrency control is delegated to the pool lock —
// the property under test here is failure atomicity, which is what the
// paper's commit path needs.

// CASEntry is one word of a multi-word CAS.
type CASEntry struct {
	Off uint64 // 8-byte-aligned word offset
	Old uint64 // expected value
	New uint64 // replacement value
}

const (
	mwStatusIdle     = 0
	mwStatusPrepared = 1
	mwStatusApplying = 2

	mwMaxEntries = 30
	// Descriptor layout: [status u64][count u64][entries: off,old,new ×
	// mwMaxEntries] = 16 + 30*24 = 736 bytes.
	mwDescSize = 16 + mwMaxEntries*24
)

// ErrMWCASTooLarge reports too many entries for the descriptor.
var ErrMWCASTooLarge = fmt.Errorf("pmemobj: MWCAS supports at most %d words", mwMaxEntries)

// hdrMWDesc is the pool-header word anchoring the MWCAS descriptor
// (reserved word at offset 56, between hdrLogCap and the free lists).
const hdrMWDesc = 56

var mwAllocMu sync.Mutex

// mwDescOff returns the descriptor offset, allocating it on first use.
// It must be called before taking the pool's transaction lock (the
// first-use allocation runs its own pool transaction).
func (p *Pool) mwDescOff() (uint64, error) {
	if off := p.dev.ReadU64(hdrMWDesc); off != 0 {
		return off, nil
	}
	mwAllocMu.Lock()
	defer mwAllocMu.Unlock()
	if off := p.dev.ReadU64(hdrMWDesc); off != 0 {
		return off, nil
	}
	off, err := p.Alloc(mwDescSize)
	if err != nil {
		return 0, err
	}
	p.dev.WriteU64(off, mwStatusIdle)
	p.dev.Persist(off, 8)
	p.dev.WriteU64(hdrMWDesc, off)
	p.dev.Persist(hdrMWDesc, 8)
	return off, nil
}

// MWCAS atomically installs every entry's New value iff every entry's
// current value equals Old. It returns false (with no changes) on any
// mismatch. The operation is failure-atomic: after a crash, either all
// or none of the new values are present.
func (p *Pool) MWCAS(entries []CASEntry) (bool, error) {
	if len(entries) == 0 {
		return true, nil
	}
	if len(entries) > mwMaxEntries {
		return false, ErrMWCASTooLarge
	}
	desc, err := p.mwDescOff()
	if err != nil {
		return false, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	dev := p.dev

	// Compare phase: any mismatch fails the whole operation.
	for _, e := range entries {
		if e.Off%8 != 0 {
			return false, fmt.Errorf("pmemobj: MWCAS offset %d not 8-byte aligned", e.Off)
		}
		if dev.ReadU64(e.Off) != e.Old {
			return false, nil
		}
	}

	// Prepare: persist the descriptor before touching any target (the
	// redo information).
	for i, e := range entries {
		base := desc + 16 + uint64(i)*24
		dev.WriteU64(base, e.Off)
		dev.WriteU64(base+8, e.Old)
		dev.WriteU64(base+16, e.New)
	}
	dev.WriteU64(desc+8, uint64(len(entries)))
	dev.Flush(desc+8, 8+uint64(len(entries))*24)
	dev.Drain()
	dev.WriteU64(desc, mwStatusPrepared)
	dev.Persist(desc, 8)

	// Linearization point: one failure-atomic 8-byte store. From here on
	// a crash rolls the operation forward.
	dev.WriteU64(desc, mwStatusApplying)
	dev.Persist(desc, 8)

	// Apply: install and persist every new value (idempotent, so redo
	// after a crash is safe).
	for _, e := range entries {
		dev.WriteU64(e.Off, e.New)
		dev.Flush(e.Off, 8)
	}
	dev.Drain()

	dev.WriteU64(desc, mwStatusIdle)
	dev.Persist(desc, 8)
	return true, nil
}

// recoverMWCAS finishes or discards an in-flight multi-word CAS after a
// crash. Called from Open.
func (p *Pool) recoverMWCAS() {
	desc := p.dev.ReadU64(hdrMWDesc)
	if desc == 0 {
		return
	}
	dev := p.dev
	switch dev.ReadU64(desc) {
	case mwStatusApplying:
		// Roll forward: reinstall every new value.
		n := dev.ReadU64(desc + 8)
		if n > mwMaxEntries {
			n = 0 // corrupt descriptor: nothing safe to redo
		}
		for i := uint64(0); i < n; i++ {
			base := desc + 16 + i*24
			off := dev.ReadU64(base)
			dev.WriteU64(off, dev.ReadU64(base+16))
			dev.Flush(off, 8)
		}
		dev.Drain()
		fallthrough
	case mwStatusPrepared:
		// Prepared-but-not-applying simply discards (no target written).
		dev.WriteU64(desc, mwStatusIdle)
		dev.Persist(desc, 8)
	}
}

// mwDescForTest exposes the descriptor offset to crash-injection tests.
func (p *Pool) mwDescForTest() (uint64, error) { return p.mwDescOff() }
