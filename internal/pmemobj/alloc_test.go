package pmemobj

import (
	"errors"
	"testing"

	"poseidon/internal/pmem"
)

func TestAllocAlignment(t *testing.T) {
	p := newTestPool(t, 4<<20)
	for _, size := range []uint64{1, 63, 64, 100, 4096, 65536} {
		off, err := p.Alloc(size)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		if off%pmem.LineSize != 0 {
			t.Errorf("Alloc(%d) = %d, not cache-line aligned", size, off)
		}
		usable, err := p.UsableSize(off)
		if err != nil {
			t.Fatal(err)
		}
		if usable < size {
			t.Errorf("Alloc(%d): usable %d < requested", size, usable)
		}
	}
}

func TestAllocZeroesMemory(t *testing.T) {
	p := newTestPool(t, 1<<20)
	off, _ := p.Alloc(256)
	// Dirty it, free it, allocate the same class again: must be zero.
	p.Device().WriteU64(off, 0xFFFF)
	p.Device().WriteU64(off+248, 0xFFFF)
	if err := p.Free(off); err != nil {
		t.Fatal(err)
	}
	off2, _ := p.Alloc(256)
	if off2 != off {
		t.Fatalf("free list did not reuse block: got %d, want %d", off2, off)
	}
	if p.Device().ReadU64(off2) != 0 || p.Device().ReadU64(off2+248) != 0 {
		t.Error("reallocated block not zeroed")
	}
}

func TestFreeListReusePerClass(t *testing.T) {
	p := newTestPool(t, 4<<20)
	a, _ := p.Alloc(100) // class 192 (incl. 64-byte header)
	b, _ := p.Alloc(960) // class 1024
	if err := p.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(b); err != nil {
		t.Fatal(err)
	}
	c, _ := p.Alloc(900) // class 1024: should reuse b, not a
	if c != b {
		t.Errorf("class-1024 alloc = %d, want reused block %d", c, b)
	}
	d, _ := p.Alloc(80) // class 192: should reuse a
	if d != a {
		t.Errorf("class-192 alloc = %d, want reused block %d", d, a)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	p := newTestPool(t, 1<<20)
	off, _ := p.Alloc(64)
	if err := p.Free(off); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(off); !errors.Is(err, ErrBadFree) {
		t.Errorf("double free = %v, want ErrBadFree", err)
	}
}

func TestFreeOfGarbageOffsetDetected(t *testing.T) {
	p := newTestPool(t, 1<<20)
	off, _ := p.Alloc(4096)
	if err := p.Free(off + 128); !errors.Is(err, ErrBadFree) {
		t.Errorf("free of interior pointer = %v, want ErrBadFree", err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	p := newTestPool(t, 1<<20)
	var last error
	for i := 0; i < 100; i++ {
		if _, err := p.Alloc(64 * 1024); err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, ErrOutOfMemory) {
		t.Errorf("exhaustion error = %v, want ErrOutOfMemory", last)
	}
}

func TestAllocTooLarge(t *testing.T) {
	p := newTestPool(t, 1<<20)
	if _, err := p.Alloc(1 << 30); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("oversized alloc = %v, want ErrOutOfMemory", err)
	}
}

func TestGroupAllocAmortizesLogging(t *testing.T) {
	p1 := newTestPool(t, 8<<20)
	before := p1.Device().Stats.Snapshot()
	if _, err := p1.GroupAlloc(64, 1024); err != nil {
		t.Fatal(err)
	}
	groupDrains := p1.Device().Stats.Snapshot().Sub(before).Drains

	p2 := newTestPool(t, 8<<20)
	before = p2.Device().Stats.Snapshot()
	for i := 0; i < 64; i++ {
		if _, err := p2.Alloc(1024); err != nil {
			t.Fatal(err)
		}
	}
	singleDrains := p2.Device().Stats.Snapshot().Sub(before).Drains

	if groupDrains*2 >= singleDrains {
		t.Errorf("group allocation drains (%d) not substantially fewer than singles (%d)",
			groupDrains, singleDrains)
	}
}

func TestGroupAllocRollbackOnFailure(t *testing.T) {
	p := newTestPool(t, 1<<20)
	used := p.HeapUsed()
	// Request far more than fits: the whole group must roll back.
	if _, err := p.GroupAlloc(1000, 4096); err == nil {
		t.Fatal("expected group alloc failure")
	}
	if got := p.HeapUsed(); got != used {
		t.Errorf("heap top %d after failed group alloc, want %d (rolled back)", got, used)
	}
}

func TestHeapBlocksDoNotOverlap(t *testing.T) {
	p := newTestPool(t, 8<<20)
	type blk struct{ off, size uint64 }
	var blocks []blk
	sizes := []uint64{64, 128, 100, 300, 64, 1000, 5000, 64}
	for _, s := range sizes {
		off, err := p.Alloc(s)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, blk{off, s})
	}
	for i, a := range blocks {
		for j, b := range blocks {
			if i == j {
				continue
			}
			if a.off < b.off+b.size && b.off < a.off+a.size {
				t.Fatalf("blocks %d and %d overlap: %+v %+v", i, j, a, b)
			}
		}
	}
}
