package pmemobj

import (
	"errors"
	"testing"

	"poseidon/internal/pmem"
)

func newTestPool(t *testing.T, size int) *Pool {
	t.Helper()
	dev := pmem.New(pmem.Config{Name: "test", Size: size, Persistent: true})
	p, err := Create(dev, Options{UUID: 0xABCD})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestCreateOpenRoundTrip(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
	p, err := Create(dev, Options{UUID: 7})
	if err != nil {
		t.Fatal(err)
	}
	off, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p.SetRoot(off)
	p.Close()

	p2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Root() != off {
		t.Errorf("root = %d, want %d", p2.Root(), off)
	}
	if p2.UUID() != 7 {
		t.Errorf("uuid = %d, want 7", p2.UUID())
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 4096, Persistent: true})
	dev.WriteU64(0, 0xDEAD)
	if _, err := Open(dev); !errors.Is(err, ErrBadPool) {
		t.Errorf("Open on garbage = %v, want ErrBadPool", err)
	}
}

func TestOpenRejectsTinyDevice(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 64, Persistent: true})
	if _, err := Open(dev); !errors.Is(err, ErrBadPool) {
		t.Errorf("Open on tiny device = %v, want ErrBadPool", err)
	}
}

func TestPPtrResolve(t *testing.T) {
	p := newTestPool(t, 1<<20)
	off, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	pp := PPtr{Pool: p.UUID(), Off: off}
	rp, roff, err := Resolve(pp)
	if err != nil {
		t.Fatal(err)
	}
	if rp != p || roff != off {
		t.Error("Resolve returned wrong pool or offset")
	}
	if _, _, err := Resolve(PPtr{Pool: 0x999, Off: 1}); err == nil {
		t.Error("Resolve of unknown pool succeeded")
	}
}

func TestPPtrStorageRoundTrip(t *testing.T) {
	p := newTestPool(t, 1<<20)
	off, _ := p.Alloc(64)
	want := PPtr{Pool: 42, Off: 4096}
	p.WritePPtr(off, want)
	if got := p.ReadPPtr(off); got != want {
		t.Errorf("ReadPPtr = %+v, want %+v", got, want)
	}
	if !(PPtr{}).IsNull() {
		t.Error("zero PPtr should be null")
	}
	if want.IsNull() {
		t.Error("non-zero PPtr reported null")
	}
}

func TestRootSurvivesCrash(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
	p, err := Create(dev, Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, _ := p.Alloc(64)
	p.SetRoot(off)
	p.Close()
	dev.Crash()
	p2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if p2.Root() != off {
		t.Errorf("root after crash = %d, want %d", p2.Root(), off)
	}
}
