package pmemobj

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"poseidon/internal/pmem"
)

func TestMWCASInstallsAllWords(t *testing.T) {
	p := newTestPool(t, 4<<20)
	dev := p.Device()
	off, _ := p.Alloc(64)
	dev.WriteU64(off, 1)
	dev.WriteU64(off+8, 2)
	dev.WriteU64(off+16, 3)
	dev.Persist(off, 24)

	ok, err := p.MWCAS([]CASEntry{
		{Off: off, Old: 1, New: 10},
		{Off: off + 8, Old: 2, New: 20},
		{Off: off + 16, Old: 3, New: 30},
	})
	if err != nil || !ok {
		t.Fatalf("MWCAS = %v, %v", ok, err)
	}
	for i, want := range []uint64{10, 20, 30} {
		if got := dev.ReadU64(off + uint64(i)*8); got != want {
			t.Errorf("word %d = %d, want %d", i, got, want)
		}
	}
	// The result is durable.
	dev.Crash()
	if dev.ReadU64(off) != 10 {
		t.Error("MWCAS result lost after crash")
	}
}

func TestMWCASFailsAtomicallyOnMismatch(t *testing.T) {
	p := newTestPool(t, 4<<20)
	dev := p.Device()
	off, _ := p.Alloc(64)
	dev.WriteU64(off, 1)
	dev.WriteU64(off+8, 999) // does not match Old below
	dev.Persist(off, 16)

	ok, err := p.MWCAS([]CASEntry{
		{Off: off, Old: 1, New: 10},
		{Off: off + 8, Old: 2, New: 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("MWCAS succeeded despite mismatch")
	}
	if dev.ReadU64(off) != 1 || dev.ReadU64(off+8) != 999 {
		t.Error("failed MWCAS modified memory")
	}
}

func TestMWCASValidation(t *testing.T) {
	p := newTestPool(t, 4<<20)
	if ok, err := p.MWCAS(nil); err != nil || !ok {
		t.Errorf("empty MWCAS = %v, %v", ok, err)
	}
	big := make([]CASEntry, mwMaxEntries+1)
	if _, err := p.MWCAS(big); !errors.Is(err, ErrMWCASTooLarge) {
		t.Errorf("oversized MWCAS err = %v", err)
	}
	off, _ := p.Alloc(64)
	if _, err := p.MWCAS([]CASEntry{{Off: off + 4}}); err == nil {
		t.Error("misaligned MWCAS accepted")
	}
}

// TestMWCASCrashRollsForward injects a crash after the Applying status is
// durable but before the values are: recovery must complete the swap.
func TestMWCASCrashRollsForward(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "mw", Size: 4 << 20, Persistent: true})
	p, _ := Create(dev, Options{})
	off, _ := p.Alloc(64)
	dev.WriteU64(off, 1)
	dev.WriteU64(off+8, 2)
	dev.Persist(off, 16)

	// Hand-craft the in-flight state: descriptor prepared and Applying,
	// targets not yet written (the worst-case crash point).
	desc, err := p.mwDescForTest()
	if err != nil {
		t.Fatal(err)
	}
	entries := []CASEntry{{Off: off, Old: 1, New: 10}, {Off: off + 8, Old: 2, New: 20}}
	for i, e := range entries {
		base := desc + 16 + uint64(i)*24
		dev.WriteU64(base, e.Off)
		dev.WriteU64(base+8, e.Old)
		dev.WriteU64(base+16, e.New)
	}
	dev.WriteU64(desc+8, 2)
	dev.Flush(desc+8, 8+2*24)
	dev.Drain()
	dev.WriteU64(desc, mwStatusApplying)
	dev.Persist(desc, 8)
	p.Close()
	dev.Crash()

	p2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if dev.ReadU64(off) != 10 || dev.ReadU64(off+8) != 20 {
		t.Errorf("values after roll-forward = %d,%d, want 10,20",
			dev.ReadU64(off), dev.ReadU64(off+8))
	}
	// The descriptor must be idle again and MWCAS usable.
	if ok, err := p2.MWCAS([]CASEntry{{Off: off, Old: 10, New: 11}}); err != nil || !ok {
		t.Fatalf("MWCAS after recovery = %v, %v", ok, err)
	}
}

// TestMWCASCrashDiscardsPrepared injects a crash before the Applying
// status: recovery must discard the descriptor and leave targets alone.
func TestMWCASCrashDiscardsPrepared(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "mw", Size: 4 << 20, Persistent: true})
	p, _ := Create(dev, Options{})
	off, _ := p.Alloc(64)
	dev.WriteU64(off, 1)
	dev.Persist(off, 8)
	desc, _ := p.mwDescForTest()
	dev.WriteU64(desc+16, off)
	dev.WriteU64(desc+16+8, 1)
	dev.WriteU64(desc+16+16, 99)
	dev.WriteU64(desc+8, 1)
	dev.Flush(desc+8, 32)
	dev.Drain()
	dev.WriteU64(desc, mwStatusPrepared)
	dev.Persist(desc, 8)
	p.Close()
	dev.Crash()

	p2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := dev.ReadU64(off); got != 1 {
		t.Errorf("prepared-only crash changed target: %d", got)
	}
}

// TestMWCASAtomicityProperty: across random crash points, after recovery
// the words are either all old or all new.
func TestMWCASAtomicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(pmem.Config{Name: "mw", Size: 4 << 20, Persistent: true})
		p, err := Create(dev, Options{})
		if err != nil {
			return false
		}
		off, err := p.Alloc(256)
		if err != nil {
			return false
		}
		n := 1 + rng.Intn(8)
		entries := make([]CASEntry, n)
		for i := range entries {
			entries[i] = CASEntry{Off: off + uint64(i)*8, Old: uint64(i + 1), New: uint64(100 + i)}
			dev.WriteU64(entries[i].Off, entries[i].Old)
		}
		dev.Persist(off, uint64(n)*8)

		// Build the descriptor to a random durable stage, then crash.
		desc, err := p.mwDescForTest()
		if err != nil {
			return false
		}
		stage := rng.Intn(3) // 0: nothing, 1: prepared, 2: applying (+partial)
		if stage >= 1 {
			for i, e := range entries {
				base := desc + 16 + uint64(i)*24
				dev.WriteU64(base, e.Off)
				dev.WriteU64(base+8, e.Old)
				dev.WriteU64(base+16, e.New)
			}
			dev.WriteU64(desc+8, uint64(n))
			dev.Flush(desc+8, 8+uint64(n)*24)
			dev.Drain()
			dev.WriteU64(desc, mwStatusPrepared)
			dev.Persist(desc, 8)
		}
		if stage == 2 {
			dev.WriteU64(desc, mwStatusApplying)
			dev.Persist(desc, 8)
			// Apply a random prefix durably.
			k := rng.Intn(n + 1)
			for i := 0; i < k; i++ {
				dev.WriteU64(entries[i].Off, entries[i].New)
				dev.Flush(entries[i].Off, 8)
			}
			dev.Drain()
		}
		p.Close()
		dev.Crash()
		p2, err := Open(dev)
		if err != nil {
			return false
		}
		defer p2.Close()

		allOld, allNew := true, true
		for _, e := range entries {
			switch dev.ReadU64(e.Off) {
			case e.Old:
				allNew = false
			case e.New:
				allOld = false
			default:
				return false
			}
		}
		if stage == 2 {
			return allNew // applying must roll forward
		}
		return allOld // prepared or untouched must roll back
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
