package pmemobj

import (
	"fmt"

	"poseidon/internal/pmem"
)

// Segregated free-list allocator.
//
// Every block carries a 64-byte header so that user data stays cache-line
// and 256-byte aligned (DG3). Header word 0 holds the size class plus an
// allocated bit; for free blocks, word 1 links to the next free block of
// the class. Freed blocks are never returned to the heap: they go on a
// per-class persistent free list for reuse (DG5: reuse blocks of memory
// instead of deallocating).
//
// All metadata mutations happen inside an undo-log transaction, so a crash
// mid-allocation rolls the allocator back to a consistent state — this is
// the redo/undo machinery that makes PMem allocations expensive (C5).

const blockHdrSize = 64

const (
	bhClass = 0 // header word: class index | allocatedBit
	bhNext  = 8 // header word: next free block (free blocks only)
	bhSize  = 16
)

const allocatedBit = uint64(1) << 63

// classSizes are total block sizes (including the 64-byte header), all
// multiples of 256 bytes beyond the smallest classes so that chunk-sized
// allocations are DCPMM-block aligned.
var classSizes = []uint64{
	128, 192, 256, 512, 1024, 2048, 4096, 8192,
	16384, 32768, 65536, 131072, 262144, 524288,
	1 << 20, 2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20,
}

const numClasses = 20

func classFor(total uint64) (int, bool) {
	for i, s := range classSizes {
		if total <= s {
			return i, true
		}
	}
	return 0, false
}

func freeHeadSlot(class int) uint64 { return hdrFreeHead + uint64(class)*8 }

// Alloc allocates size user bytes in its own transaction and returns the
// user offset (64-byte aligned). The block contents are zeroed and
// persisted.
func (p *Pool) Alloc(size uint64) (uint64, error) {
	var off uint64
	err := p.RunTx(func(tx *Tx) error {
		var err error
		off, err = tx.Alloc(size)
		return err
	})
	return off, err
}

// GroupAlloc allocates n blocks of size user bytes within a single
// transaction, amortizing the logging and flush overhead (DG5).
func (p *Pool) GroupAlloc(n int, size uint64) ([]uint64, error) {
	offs := make([]uint64, 0, n)
	err := p.RunTx(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			off, err := tx.Alloc(size)
			if err != nil {
				return err
			}
			offs = append(offs, off)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return offs, nil
}

// Free returns the block containing user offset off to its free list, in
// its own transaction.
func (p *Pool) Free(off uint64) error {
	return p.RunTx(func(tx *Tx) error { return tx.Free(off) })
}

// UsableSize returns the user capacity of the allocated block at off.
func (p *Pool) UsableSize(off uint64) (uint64, error) {
	hdr := off - blockHdrSize
	w := p.dev.ReadU64(hdr + bhClass)
	if w&allocatedBit == 0 {
		return 0, ErrBadFree
	}
	return p.dev.ReadU64(hdr + bhSize), nil
}

// Alloc allocates inside the transaction. If the transaction aborts or the
// system crashes before commit, the allocation is rolled back.
//
// Lane transactions cannot allocate: the heap top and free-list heads are
// global, and snapshotting them into a lane log would let a concurrent
// built-in-log transaction's mutation be clobbered by crash rollback.
func (tx *Tx) Alloc(size uint64) (uint64, error) {
	if tx.laned {
		return 0, fmt.Errorf("pmemobj: Alloc inside a lane transaction")
	}
	total := align(size+blockHdrSize, pmem.LineSize)
	class, ok := classFor(total)
	if !ok {
		return 0, fmt.Errorf("%w: allocation of %d bytes exceeds the largest size class", ErrOutOfMemory, size)
	}
	blockSize := classSizes[class]
	p := tx.p
	dev := p.dev

	slot := freeHeadSlot(class)
	var block uint64
	if head := dev.ReadU64(slot); head != 0 {
		// Pop the free list. Snapshot the head slot and the block header
		// so a rollback restores the list exactly.
		if err := tx.Snapshot(slot, 8); err != nil {
			return 0, err
		}
		if err := tx.Snapshot(head, blockHdrSize); err != nil {
			return 0, err
		}
		next := dev.ReadU64(head + bhNext)
		dev.WriteU64(slot, next)
		block = head
	} else {
		// Bump allocation from the heap top.
		if err := tx.Snapshot(hdrHeapTop, 8); err != nil {
			return 0, err
		}
		top := dev.ReadU64(hdrHeapTop)
		top = align(top, pmem.BlockSize)
		if top+blockSize > uint64(dev.Size()) {
			return 0, fmt.Errorf("%w: heap exhausted (top=%d, need=%d, size=%d)",
				ErrOutOfMemory, top, blockSize, dev.Size())
		}
		dev.WriteU64(hdrHeapTop, top+blockSize)
		block = top
	}

	dev.WriteU64(block+bhClass, uint64(class)|allocatedBit)
	dev.WriteU64(block+bhNext, 0)
	dev.WriteU64(block+bhSize, blockSize-blockHdrSize)
	user := block + blockHdrSize
	dev.Zero(user, blockSize-blockHdrSize)
	tx.noteWrite(block, blockSize)
	return user, nil
}

// Free returns a block to its class free list inside the transaction.
// Like Alloc, it is unavailable to lane transactions.
func (tx *Tx) Free(off uint64) error {
	if tx.laned {
		return fmt.Errorf("pmemobj: Free inside a lane transaction")
	}
	p := tx.p
	dev := p.dev
	block := off - blockHdrSize
	w := dev.ReadU64(block + bhClass)
	if w&allocatedBit == 0 {
		return ErrBadFree
	}
	class := int(w &^ allocatedBit)
	if class < 0 || class >= numClasses {
		return ErrBadFree
	}
	slot := freeHeadSlot(class)
	if err := tx.Snapshot(slot, 8); err != nil {
		return err
	}
	if err := tx.Snapshot(block, blockHdrSize); err != nil {
		return err
	}
	head := dev.ReadU64(slot)
	dev.WriteU64(block+bhClass, uint64(class))
	dev.WriteU64(block+bhNext, head)
	dev.WriteU64(slot, block)
	return nil
}

// HeapUsed returns the number of bytes consumed from the heap (including
// freed-but-reusable blocks, which are never returned to the heap).
func (p *Pool) HeapUsed() uint64 {
	return p.dev.ReadU64(hdrHeapTop)
}
