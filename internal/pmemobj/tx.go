package pmemobj

import (
	"fmt"
)

// Undo-log transactions (the libpmemobj model the paper uses for commit,
// §5.1). The protocol is:
//
//  1. Snapshot(off, len) copies the current contents of the range into the
//     persistent undo log and makes the log entry durable *before* the
//     caller modifies the range.
//  2. The caller mutates the snapshotted ranges through the device.
//  3. Commit flushes all modified ranges, then invalidates the log with a
//     single 8-byte durable store of the entry count (C4: the commit point
//     is one failure-atomic write).
//
// If the process crashes between 1 and 3, Open finds a non-empty log and
// rolls the ranges back to their snapshotted contents. Abort performs the
// same rollback online.

// Log region layout: word 0 holds the entry count (0 = log invalid/empty);
// entries start at logOff+64. Each entry is [off u64][len u64][old data,
// padded to 8 bytes].
const logDataStart = 64

// Tx is an in-flight failure-atomic transaction. A Tx is only valid inside
// the RunTx callback that created it and must not be used concurrently.
type Tx struct {
	p       *Pool
	logOff  uint64 // base of the undo log this transaction writes
	logCap  uint64
	laned   bool   // true for lane transactions (no allocator access)
	logEnd  uint64 // next free byte in the log region (volatile)
	count   uint64 // entries appended so far (volatile mirror)
	touched []txRange
}

type txRange struct{ off, n uint64 }

// RunTx executes fn inside a transaction on the pool's built-in undo log.
// If fn returns nil the transaction commits; any error (or panic) rolls
// back every snapshotted range. Transactions serialize on the pool:
// nesting RunTx on the same pool deadlocks by design, matching
// libpmemobj's one-transaction-per-thread rule.
func (p *Pool) RunTx(fn func(*Tx) error) (err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tx := &Tx{p: p, logOff: p.logOff, logCap: p.logCap, logEnd: p.logOff + logDataStart}
	return tx.run(fn)
}

// RunTxLane executes fn inside a transaction on an attached undo-log lane
// (see AttachLane). Lane 0 is the pool's built-in log and behaves exactly
// like RunTx. Lanes have independent mutexes, so transactions on
// different lanes run concurrently; the caller must guarantee that ranges
// touched by concurrent lane transactions never overlap (the engine does
// this by mapping every persistent range to one shard and requiring the
// shard's commit lock for the lane transaction that touches it).
// Otherwise crash rollback, which replays lane logs in arbitrary lane
// order, could resurrect overwritten data.
//
// Lane transactions cannot allocate or free blocks: the allocator's
// metadata is global and protected by the pool's built-in log only.
func (p *Pool) RunTxLane(lane int, fn func(*Tx) error) error {
	if lane == 0 {
		return p.RunTx(fn)
	}
	l := p.lane(lane)
	if l == nil {
		return fmt.Errorf("pmemobj: no attached lane %d", lane)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	tx := &Tx{p: p, logOff: l.off, logCap: l.cap, laned: true, logEnd: l.off + logDataStart}
	return tx.run(fn)
}

func (tx *Tx) run(fn func(*Tx) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			tx.rollback()
			panic(r)
		}
	}()
	if err = fn(tx); err != nil {
		tx.rollback()
		return err
	}
	tx.commit()
	return nil
}

// Begin starts an explicit transaction, taking the pool's transaction
// lock. Most callers should use RunTx; Begin exists for bulk-load paths
// and for crash-injection tests that abandon a transaction mid-flight.
// Every Begin must be paired with exactly one Commit or Abandon.
func (p *Pool) Begin() *Tx {
	p.mu.Lock()
	return &Tx{p: p, logOff: p.logOff, logCap: p.logCap, logEnd: p.logOff + logDataStart}
}

// Commit flushes the transaction's ranges, invalidates the undo log and
// releases the pool lock. Only valid on transactions from Begin.
func (tx *Tx) Commit() {
	tx.commit()
	tx.p.mu.Unlock()
}

// Abandon releases the pool lock without committing or rolling back,
// leaving the undo log populated — exactly the persistent state a crash
// would leave behind. The next Open rolls the transaction back. Only
// valid on transactions from Begin.
func (tx *Tx) Abandon() {
	tx.p.mu.Unlock()
}

// covered reports whether [off, off+n) lies entirely inside one range
// this transaction has already snapshotted or note-written. Re-logging a
// covered range is pure overhead: rollback restores entries in reverse
// order, so the oldest snapshot of a range wins regardless.
func (tx *Tx) covered(off, n uint64) bool {
	for _, r := range tx.touched {
		if off >= r.off && off+n <= r.off+r.n {
			return true
		}
	}
	return false
}

// SnapshotCost returns the number of undo-log bytes a Snapshot of an
// n-byte range consumes: the 16-byte entry header plus the old image
// padded to 8 bytes. Group-commit leaders use it to size epochs against
// LaneCap before entering the lane transaction.
func SnapshotCost(n uint64) uint64 { return 16 + align(n, 8) }

// LogHeaderBytes is the fixed per-log header (the cache line holding the
// entry-count word); usable snapshot space is the log capacity minus
// this.
const LogHeaderBytes = logDataStart

// LogFree returns the bytes remaining in this transaction's undo log.
func (tx *Tx) LogFree() uint64 { return tx.logOff + tx.logCap - tx.logEnd }

// Snapshot records the current contents of [off, off+n) in the undo log so
// the range can be modified failure-atomically. It must be called before
// the first modification of the range within the transaction. A range
// already covered by an earlier Snapshot or NoteWrite of this
// transaction is skipped without touching the log.
func (tx *Tx) Snapshot(off, n uint64) error {
	if n == 0 {
		return nil
	}
	if off%8 != 0 {
		panic("pmemobj: Snapshot offset must be 8-byte aligned")
	}
	if tx.covered(off, n) {
		return nil
	}
	p := tx.p
	dataLen := align(n, 8)
	need := 16 + dataLen
	if tx.logEnd+need > tx.logOff+tx.logCap {
		return fmt.Errorf("%w: need %d bytes", ErrLogFull, need)
	}
	dev := p.dev
	entry := tx.logEnd
	dev.WriteU64(entry, off)
	dev.WriteU64(entry+8, n)
	// Copy the old contents into the log.
	words := make([]uint64, dataLen/8)
	for i := range words {
		words[i] = dev.ReadU64(off + uint64(i)*8)
	}
	dev.WriteWords(entry+16, words)
	dev.Flush(entry, need)
	// The entry becomes valid only once the count is bumped durably.
	tx.count++
	dev.WriteU64(tx.logOff, tx.count)
	dev.Persist(tx.logOff, 8)
	tx.logEnd += need
	tx.touched = append(tx.touched, txRange{off, n})
	// The range is now recoverable even while its stores sit unflushed
	// in the CPU cache; tell the strict flush checker (no-op otherwise).
	dev.NoteUndoCovered(off, n)
	return nil
}

// Range identifies a device range for batched snapshotting.
type Range struct{ Off, N uint64 }

// SnapshotAll records every listed range in the undo log with a single
// durable publication of the entry count — one fence for the whole
// batch instead of one per range. This is the group-commit leader's
// batched append: K member transactions' undo images become valid
// together at one fence. Ranges already covered by this transaction (or
// by an earlier range in the same call) are skipped. If the surviving
// batch does not fit the remaining log space, nothing is appended and
// ErrLogFull is returned, so the caller can split the epoch and retry.
func (tx *Tx) SnapshotAll(ranges []Range) error {
	keep := make([]txRange, 0, len(ranges))
	need := uint64(0)
	for _, r := range ranges {
		if r.N == 0 {
			continue
		}
		if r.Off%8 != 0 {
			panic("pmemobj: SnapshotAll offset must be 8-byte aligned")
		}
		if tx.covered(r.Off, r.N) {
			continue
		}
		dup := false
		for _, k := range keep {
			if r.Off >= k.off && r.Off+r.N <= k.off+k.n {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		keep = append(keep, txRange{r.Off, r.N})
		need += SnapshotCost(r.N)
	}
	if len(keep) == 0 {
		return nil
	}
	if tx.logEnd+need > tx.logOff+tx.logCap {
		return fmt.Errorf("%w: need %d bytes for %d ranges", ErrLogFull, need, len(keep))
	}
	dev := tx.p.dev
	start := tx.logEnd
	for _, k := range keep {
		entry := tx.logEnd
		dev.WriteU64(entry, k.off)
		dev.WriteU64(entry+8, k.n)
		dataLen := align(k.n, 8)
		words := make([]uint64, dataLen/8)
		for i := range words {
			words[i] = dev.ReadU64(k.off + uint64(i)*8)
		}
		dev.WriteWords(entry+16, words)
		tx.logEnd += 16 + dataLen
		tx.count++
	}
	dev.Flush(start, tx.logEnd-start)
	// One durable count store validates every appended entry at once:
	// the group fence.
	dev.WriteU64(tx.logOff, tx.count)
	if !mutateGroupFence() {
		// crashmutate groupfence builds skip the publication fence; the
		// count word then never reaches media and rollback misses the
		// whole batch.
		dev.Persist(tx.logOff, 8)
	}
	for _, k := range keep {
		tx.touched = append(tx.touched, k)
		dev.NoteUndoCovered(k.off, k.n)
	}
	return nil
}

// NoteWrite registers a range to be flushed at commit without
// snapshotting it first. This is only safe for memory whose pre-transaction
// contents are unreachable — typically memory allocated within the same
// transaction, which the allocator rolls back wholesale on abort.
func (tx *Tx) NoteWrite(off, n uint64) {
	tx.touched = append(tx.touched, txRange{off, n})
	tx.p.dev.NoteUndoCovered(off, n)
}

func (tx *Tx) noteWrite(off, n uint64) { tx.NoteWrite(off, n) }

func (tx *Tx) commit() {
	dev := tx.p.dev
	for i, r := range tx.touched {
		if mutateSkipFlush() && i == len(tx.touched)-1 {
			// crashmutate builds omit the last range's flush; the
			// commit record below then lies about durability.
			continue
		}
		dev.Flush(r.off, r.n)
	}
	dev.Drain()
	// Single 8-byte store is the commit point (DG4).
	dev.WriteU64(tx.logOff, 0)
	dev.Persist(tx.logOff, 8)
}

func (tx *Tx) rollback() {
	tx.p.applyUndoAt(tx.logOff, tx.count)
}

// applyUndoAt restores count undo entries of the log at logOff in reverse
// order and invalidates the log. Used by online aborts and by crash
// recovery (of the built-in log and of attached lanes).
func (p *Pool) applyUndoAt(logOff, count uint64) {
	dev := p.dev
	if count == 0 {
		dev.WriteU64(logOff, 0)
		dev.Persist(logOff, 8)
		return
	}
	// Walk forward to locate the entries, then restore in reverse so the
	// oldest snapshot of an overlapping range wins.
	type loc struct{ entry, off, n uint64 }
	locs := make([]loc, 0, count)
	pos := logOff + logDataStart
	for i := uint64(0); i < count; i++ {
		off := dev.ReadU64(pos)
		n := dev.ReadU64(pos + 8)
		locs = append(locs, loc{pos, off, n})
		pos += 16 + align(n, 8)
	}
	for i := len(locs) - 1; i >= 0; i-- {
		l := locs[i]
		words := align(l.n, 8) / 8
		for w := uint64(0); w < words; w++ {
			dev.WriteU64(l.off+w*8, dev.ReadU64(l.entry+16+w*8))
		}
		dev.Flush(l.off, l.n)
	}
	dev.Drain()
	dev.WriteU64(logOff, 0)
	dev.Persist(logOff, 8)
}

// recover rolls back an in-flight transaction found after a crash.
func (p *Pool) recover() error {
	count := p.dev.ReadU64(p.logOff)
	if count == 0 {
		return nil
	}
	p.applyUndoAt(p.logOff, count)
	return nil
}
