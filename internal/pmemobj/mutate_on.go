//go:build crashmutate

package pmemobj

import "os"

// Crashmutate builds compile deliberate crash-consistency bugs into the
// commit protocol so the crash-point explorer (internal/crashx) can
// mutation-validate that the fsck harness actually fails when the
// protocol is broken. The active mutant is selected at run time through
// POSEIDON_MUTATE, so one test binary can exercise each bug in
// isolation:
//
//	skipflush  (default) — tx.commit invalidates the undo log without
//	                       having flushed its last touched range, so
//	                       recovery trusts a commit whose data may never
//	                       have reached media
//	groupfence           — SnapshotAll publishes the batched undo
//	                       entries' count without its fence (the group
//	                       fence a commit-epoch leader issues once for
//	                       the whole batch), so the entries are never
//	                       durably valid and crash rollback misses them
//
// Never set this tag outside those tests.
func mutateActive(name string) bool {
	m := os.Getenv("POSEIDON_MUTATE")
	if m == "" {
		m = "skipflush"
	}
	return m == name
}

func mutateSkipFlush() bool { return mutateActive("skipflush") }

func mutateGroupFence() bool { return mutateActive("groupfence") }
