//go:build crashmutate

package pmemobj

// mutateSkipFlush injects a deliberate crash-consistency bug: tx.commit
// invalidates the undo log without having flushed its last touched range.
// Recovery then trusts a commit whose data may never have reached media.
// The crash-point explorer (internal/crashx) must report this build as a
// violation — it mutation-validates that the fsck harness can actually
// fail. Never set this tag outside that test.
const mutateSkipFlush = true
