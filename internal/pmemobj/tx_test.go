package pmemobj

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"poseidon/internal/pmem"
)

func TestTxCommitPersists(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
	p, _ := Create(dev, Options{})
	defer p.Close()
	off, _ := p.Alloc(64)
	err := p.RunTx(func(tx *Tx) error {
		if err := tx.Snapshot(off, 16); err != nil {
			return err
		}
		dev.WriteU64(off, 111)
		dev.WriteU64(off+8, 222)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	dev.Crash()
	if dev.ReadU64(off) != 111 || dev.ReadU64(off+8) != 222 {
		t.Error("committed transaction data lost after crash")
	}
}

func TestTxAbortRollsBack(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
	p, _ := Create(dev, Options{})
	defer p.Close()
	off, _ := p.Alloc(64)
	dev.WriteU64(off, 5)
	dev.Persist(off, 8)

	sentinel := errors.New("abort")
	err := p.RunTx(func(tx *Tx) error {
		if err := tx.Snapshot(off, 8); err != nil {
			return err
		}
		dev.WriteU64(off, 999)
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("RunTx error = %v", err)
	}
	if got := dev.ReadU64(off); got != 5 {
		t.Errorf("value after abort = %d, want 5", got)
	}
}

func TestTxPanicRollsBackAndRepanics(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
	p, _ := Create(dev, Options{})
	defer p.Close()
	off, _ := p.Alloc(64)
	dev.WriteU64(off, 7)
	dev.Persist(off, 8)

	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic was swallowed")
			}
		}()
		_ = p.RunTx(func(tx *Tx) error {
			_ = tx.Snapshot(off, 8)
			dev.WriteU64(off, 0)
			panic("boom")
		})
	}()
	if got := dev.ReadU64(off); got != 7 {
		t.Errorf("value after panicking tx = %d, want 7", got)
	}
}

func TestCrashMidTxRecoversOldState(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
	p, _ := Create(dev, Options{})
	off, _ := p.Alloc(128)
	for i := uint64(0); i < 16; i++ {
		dev.WriteU64(off+i*8, i+1)
	}
	dev.Persist(off, 128)

	// Simulate a crash in the middle of a transaction: snapshot, modify,
	// flush the modifications (so they are on media!), then crash before
	// commit. Recovery must roll them back from the undo log.
	p.mu.Lock()
	tx := &Tx{p: p, logOff: p.logOff, logCap: p.logCap, logEnd: p.logOff + logDataStart}
	if err := tx.Snapshot(off, 128); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 16; i++ {
		dev.WriteU64(off+i*8, 1000+i)
	}
	dev.Persist(off, 128)
	p.mu.Unlock()
	p.Close()
	dev.Crash()

	p2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	for i := uint64(0); i < 16; i++ {
		if got := dev.ReadU64(off + i*8); got != i+1 {
			t.Fatalf("word %d = %d after recovery, want %d", i, got, i+1)
		}
	}
}

func TestCrashMidAllocRollsBackAllocator(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
	p, _ := Create(dev, Options{})
	top := p.HeapUsed()

	// Allocate inside a tx that never commits, then crash.
	p.mu.Lock()
	tx := &Tx{p: p, logOff: p.logOff, logCap: p.logCap, logEnd: p.logOff + logDataStart}
	if _, err := tx.Alloc(4096); err != nil {
		t.Fatal(err)
	}
	p.mu.Unlock()
	p.Close()
	dev.Crash()

	p2, err := Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	// Note: heap-top snapshots are durable before mutation, so recovery
	// restores the pre-transaction top even though the bump itself was
	// never flushed.
	if got := p2.HeapUsed(); got != top {
		t.Errorf("heap top after crash = %d, want %d", got, top)
	}
	// The pool must still be able to allocate.
	if _, err := p2.Alloc(64); err != nil {
		t.Fatal(err)
	}
}

func TestTxLogFull(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
	p, _ := Create(dev, Options{LogCap: 4096})
	defer p.Close()
	off, _ := p.Alloc(8192)
	err := p.RunTx(func(tx *Tx) error {
		return tx.Snapshot(off, 8000) // exceeds the 4 KiB log
	})
	if !errors.Is(err, ErrLogFull) {
		t.Errorf("err = %v, want ErrLogFull", err)
	}
}

func TestOverlappingSnapshotsRestoreOldest(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
	p, _ := Create(dev, Options{})
	defer p.Close()
	off, _ := p.Alloc(64)
	dev.WriteU64(off, 1)
	dev.Persist(off, 8)

	_ = p.RunTx(func(tx *Tx) error {
		_ = tx.Snapshot(off, 8)
		dev.WriteU64(off, 2)
		_ = tx.Snapshot(off, 8) // snapshots the intermediate value 2
		dev.WriteU64(off, 3)
		return errors.New("abort")
	})
	if got := dev.ReadU64(off); got != 1 {
		t.Errorf("value = %d, want original 1", got)
	}
}

// TestTxCrashAtomicityProperty is the core failure-atomicity property: for
// a random sequence of committed transactions with a crash injected during
// a final uncommitted one, recovery always yields exactly the state of the
// last commit.
func TestTxCrashAtomicityProperty(t *testing.T) {
	const words = 32
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.New(pmem.Config{Name: "t", Size: 1 << 20, Persistent: true})
		p, err := Create(dev, Options{})
		if err != nil {
			return false
		}
		off, err := p.Alloc(words * 8)
		if err != nil {
			return false
		}

		expected := make([]uint64, words)
		// A few committed transactions.
		for txn := 0; txn < rng.Intn(4)+1; txn++ {
			err := p.RunTx(func(tx *Tx) error {
				for k := 0; k < rng.Intn(5)+1; k++ {
					w := uint64(rng.Intn(words))
					v := rng.Uint64()
					if err := tx.Snapshot(off+w*8, 8); err != nil {
						return err
					}
					dev.WriteU64(off+w*8, v)
					expected[w] = v
				}
				return nil
			})
			if err != nil {
				return false
			}
		}
		// One transaction that crashes before commit, possibly after
		// flushing its dirty data.
		p.mu.Lock()
		tx := &Tx{p: p, logOff: p.logOff, logCap: p.logCap, logEnd: p.logOff + logDataStart}
		for k := 0; k < rng.Intn(5)+1; k++ {
			w := uint64(rng.Intn(words))
			if err := tx.Snapshot(off+w*8, 8); err != nil {
				p.mu.Unlock()
				return false
			}
			dev.WriteU64(off+w*8, rng.Uint64())
			if rng.Intn(2) == 0 {
				dev.Persist(off+w*8, 8)
			}
		}
		p.mu.Unlock()
		p.Close()
		dev.Crash()

		p2, err := Open(dev)
		if err != nil {
			return false
		}
		defer p2.Close()
		for w := uint64(0); w < words; w++ {
			if dev.ReadU64(off+w*8) != expected[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
