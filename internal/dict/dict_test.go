package dict

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"poseidon/internal/pmem"
	"poseidon/internal/pmemobj"
)

func newTestDict(t *testing.T, size int) (*Dict, *pmem.Device) {
	t.Helper()
	dev := pmem.New(pmem.Config{Name: "dict", Size: size, Persistent: true})
	pool, err := pmemobj.Create(dev, pmemobj.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pool.Close)
	d, err := Create(pool)
	if err != nil {
		t.Fatal(err)
	}
	return d, dev
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d, _ := newTestDict(t, 8<<20)
	words := []string{"Person", "knows", "likes", "", "a", "comment", "Straße", "名前"}
	codes := make(map[string]uint64)
	for _, w := range words {
		c, err := d.Encode(w)
		if err != nil {
			t.Fatalf("Encode(%q): %v", w, err)
		}
		if c == 0 {
			t.Fatalf("Encode(%q) returned reserved code 0", w)
		}
		codes[w] = c
	}
	for _, w := range words {
		got, err := d.Decode(codes[w])
		if err != nil {
			t.Fatalf("Decode(%d): %v", codes[w], err)
		}
		if got != w {
			t.Errorf("Decode(Encode(%q)) = %q", w, got)
		}
	}
}

func TestEncodeIsIdempotent(t *testing.T) {
	d, _ := newTestDict(t, 8<<20)
	a, _ := d.Encode("hello")
	b, _ := d.Encode("hello")
	if a != b {
		t.Errorf("codes differ: %d vs %d", a, b)
	}
	if d.Count() != 1 {
		t.Errorf("count = %d, want 1", d.Count())
	}
}

func TestLookupDoesNotInsert(t *testing.T) {
	d, _ := newTestDict(t, 8<<20)
	if _, ok := d.Lookup("ghost"); ok {
		t.Error("Lookup found a string never inserted")
	}
	if d.Count() != 0 {
		t.Errorf("count = %d after failed lookup, want 0", d.Count())
	}
	c, _ := d.Encode("real")
	got, ok := d.Lookup("real")
	if !ok || got != c {
		t.Errorf("Lookup = (%d,%v), want (%d,true)", got, ok, c)
	}
}

func TestDecodeUnknownCode(t *testing.T) {
	d, _ := newTestDict(t, 8<<20)
	d.Encode("x")
	for _, code := range []uint64{0, 2, 999} {
		if _, err := d.Decode(code); !errors.Is(err, ErrUnknownCode) {
			t.Errorf("Decode(%d) err = %v, want ErrUnknownCode", code, err)
		}
	}
}

func TestGrowRehashPreservesAllCodes(t *testing.T) {
	d, _ := newTestDict(t, 64<<20)
	const n = 5000 // forces several rehashes past the initial 1024 buckets
	codes := make([]uint64, n)
	for i := 0; i < n; i++ {
		c, err := d.Encode(fmt.Sprintf("string-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		codes[i] = c
	}
	if d.Count() != n {
		t.Fatalf("count = %d, want %d", d.Count(), n)
	}
	for i := 0; i < n; i++ {
		want := fmt.Sprintf("string-%d", i)
		if got, err := d.Decode(codes[i]); err != nil || got != want {
			t.Fatalf("Decode(%d) = %q,%v want %q", codes[i], got, err, want)
		}
		if got, ok := d.Lookup(want); !ok || got != codes[i] {
			t.Fatalf("Lookup(%q) = %d,%v want %d", want, got, ok, codes[i])
		}
	}
}

func TestDictSurvivesCleanCrash(t *testing.T) {
	dev := pmem.New(pmem.Config{Name: "dict", Size: 16 << 20, Persistent: true})
	pool, _ := pmemobj.Create(dev, pmemobj.Options{})
	d, _ := Create(pool)
	pool.SetRoot(d.Offset())
	want := map[string]uint64{}
	for i := 0; i < 200; i++ {
		s := fmt.Sprintf("label-%d", i)
		c, err := d.Encode(s)
		if err != nil {
			t.Fatal(err)
		}
		want[s] = c
	}
	pool.Close()
	dev.Crash()

	pool2, err := pmemobj.Open(dev)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	d2 := Open(pool2, pool2.Root())
	for s, c := range want {
		got, ok := d2.Lookup(s)
		if !ok || got != c {
			t.Fatalf("after crash: Lookup(%q) = %d,%v want %d", s, got, ok, c)
		}
		if str, err := d2.Decode(c); err != nil || str != s {
			t.Fatalf("after crash: Decode(%d) = %q,%v want %q", c, str, err, s)
		}
	}
}

func TestConcurrentEncode(t *testing.T) {
	d, _ := newTestDict(t, 64<<20)
	const workers = 8
	const perWorker = 300
	var wg sync.WaitGroup
	results := make([]map[string]uint64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := make(map[string]uint64)
			for i := 0; i < perWorker; i++ {
				// Heavy overlap across workers to exercise the double-check.
				s := fmt.Sprintf("shared-%d", i%100)
				c, err := d.Encode(s)
				if err != nil {
					t.Error(err)
					return
				}
				m[s] = c
			}
			results[w] = m
		}(w)
	}
	wg.Wait()
	// All workers must agree on every code.
	for s, c := range results[0] {
		for w := 1; w < workers; w++ {
			if results[w][s] != c {
				t.Fatalf("worker %d disagrees on %q: %d vs %d", w, s, results[w][s], c)
			}
		}
	}
	if d.Count() != 100 {
		t.Errorf("count = %d, want 100 distinct strings", d.Count())
	}
}

func TestDictBijectionProperty(t *testing.T) {
	d, _ := newTestDict(t, 64<<20)
	seen := map[uint64]string{}
	f := func(s string) bool {
		if len(s) > 1000 {
			s = s[:1000]
		}
		c, err := d.Encode(s)
		if err != nil {
			return false
		}
		if prev, ok := seen[c]; ok && prev != s {
			return false // two strings share a code
		}
		seen[c] = s
		back, err := d.Decode(c)
		return err == nil && back == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLongStrings(t *testing.T) {
	d, _ := newTestDict(t, 16<<20)
	long := make([]byte, 10000)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	c, err := d.Encode(string(long))
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decode(c)
	if err != nil || got != string(long) {
		t.Error("long string round trip failed")
	}
}

func TestDecodeCacheServesHotCodes(t *testing.T) {
	d, dev := newTestDict(t, 8<<20)
	c, err := d.Encode("cached-string")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(c); err != nil { // populate the DRAM cache
		t.Fatal(err)
	}
	before := dev.Stats.Snapshot()
	for i := 0; i < 100; i++ {
		s, err := d.Decode(c)
		if err != nil || s != "cached-string" {
			t.Fatalf("Decode = %q, %v", s, err)
		}
	}
	delta := dev.Stats.Snapshot().Sub(before)
	if delta.Reads != 0 {
		t.Errorf("hot decodes did %d PMem reads, want 0 (hybrid dictionary, §8)", delta.Reads)
	}
	// A reopened dictionary starts with a cold cache but stays correct.
	d2 := Open(d.pool, d.hdr)
	if s, err := d2.Decode(c); err != nil || s != "cached-string" {
		t.Fatalf("cold decode = %q, %v", s, err)
	}
}

// TestEncodeDuringBulkBatchNoDeadlock is the lock-order regression for
// Encode vs EncodeTx: EncodeTx runs with the caller's pool transaction
// (and its lock) already open, then takes d.mu; Encode used to take
// d.mu first and then open a pool transaction — the inverted order
// deadlocked any concurrent Encode against an open bulk batch. Encode
// now opens its pool transaction before touching d.mu, so the
// concurrent encoder just parks on the pool lock.
//
// The schedule is forced, not left to chance: each round the bulk side
// opens its batch (pool lock held), signals the encoder, and sleeps so
// the encoder's Encode of a fresh string is in flight mid-batch before
// EncodeTx runs. Under the old order the encoder was then parked on the
// pool lock holding d.mu and the first EncodeTx deadlocked; the
// watchdog turns a reintroduced inversion into a failure with stacks
// instead of a hang.
func TestEncodeDuringBulkBatchNoDeadlock(t *testing.T) {
	d, _ := newTestDict(t, 16<<20)
	const rounds, perBatch = 20, 25
	batchOpen := make(chan int)
	encoded := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { // bulk loader: EncodeTx inside long-lived batches
			defer wg.Done()
			defer close(batchOpen)
			for r := 0; r < rounds; r++ {
				tx := d.pool.Begin()
				batchOpen <- r
				time.Sleep(2 * time.Millisecond) // let the Encode get in flight
				for i := 0; i < perBatch; i++ {
					if _, err := d.EncodeTx(tx, fmt.Sprintf("bulk-%d-%d", r, i)); err != nil {
						t.Error(err)
						tx.Commit()
						return
					}
				}
				tx.Commit()
				// The encoder's in-flight Encode completes once the pool
				// lock frees; wait for it before opening the next batch.
				<-encoded
			}
		}()
		go func() { // online encoder, mid-batch by construction
			defer wg.Done()
			for r := range batchOpen {
				if _, err := d.Encode(fmt.Sprintf("online-%d", r)); err != nil {
					t.Error(err)
					return
				}
				encoded <- struct{}{}
			}
		}()
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("Encode/EncodeTx deadlocked:\n%s", buf[:runtime.Stack(buf, true)])
	}
	if t.Failed() {
		return
	}
	// Every string from both sides must have been interned.
	for r := 0; r < rounds; r++ {
		for i := 0; i < perBatch; i++ {
			if _, ok := d.Lookup(fmt.Sprintf("bulk-%d-%d", r, i)); !ok {
				t.Fatalf("bulk-%d-%d missing", r, i)
			}
		}
		if _, ok := d.Lookup(fmt.Sprintf("online-%d", r)); !ok {
			t.Fatalf("online-%d missing", r)
		}
	}
	if probs := d.CheckIntegrity(); probs != nil {
		t.Fatalf("integrity violations: %v", probs)
	}
}
