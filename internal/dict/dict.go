// Package dict implements the persistent string dictionary of §4.2 (DD3):
// labels, property keys and string property values are encoded as dense
// integer codes so that records stay fixed-size and comparisons operate on
// codes instead of strings.
//
// Two persistent translation structures are kept, as in the paper: a hash
// table for string→code and a reverse table for code→string. Both live in
// PMem because "the codes and strings are not stored elsewhere" — losing
// the dictionary would make the whole graph unreadable. All mutations are
// failure-atomic via pmemobj transactions.
package dict

import (
	"errors"
	"fmt"
	"sync"

	"poseidon/internal/pmemobj"
)

// Errors returned by dictionary operations.
var (
	ErrUnknownCode = errors.New("dict: unknown code")
	ErrFull        = errors.New("dict: reverse directory full")
)

// Header layout (offsets relative to the dictionary header block).
const (
	hCount     = 0  // next code to assign (codes start at 1)
	hBucketOff = 8  // offset of the bucket array
	hBucketCap = 16 // bucket count (power of two)
	hRevDirOff = 24 // offset of the reverse directory
	hArenaOff  = 32 // current string arena block
	hArenaUsed = 40 // bytes used in the current arena block
	hArenaCap  = 48 // capacity of the current arena block
	headerSize = 64
)

const (
	slotSize      = 24 // hash u64, strOff u64, code u64
	initialBucket = 1024
	revDirCap     = 4096 // directory entries
	revBlockCodes = 4096 // codes per reverse block
	arenaBlock    = 64 << 10
)

// Dict is a bi-directional persistent string dictionary with a hybrid
// DRAM acceleration layer: decoded strings are memoized in a volatile
// cache (codes are immutable once assigned), so hot decodes skip PMem
// entirely. This implements the paper's §8 outlook ("further performance
// improvements ... by employing more hybrid DRAM/PMem approaches such as
// for dictionaries"); the cache is simply empty after recovery.
type Dict struct {
	pool *pmemobj.Pool
	hdr  uint64

	// mu protects readers from in-flight rehashes. Mutations additionally
	// serialize on the pool's transaction lock, and the process-wide lock
	// order is pool lock BEFORE d.mu: EncodeTx runs with the caller's
	// pool transaction already open and takes d.mu inside it, so Encode
	// must open its own pool transaction first and only then take d.mu
	// (see encodeInTx). Taking d.mu around RunTx would invert the order
	// and deadlock against an open bulk-load batch.
	mu sync.RWMutex

	// decodeCache memoizes code→string (volatile, rebuilt on demand).
	decodeCache sync.Map
}

// Create allocates and initializes a dictionary in p. The returned header
// offset identifies the dictionary for Open.
func Create(p *pmemobj.Pool) (*Dict, error) {
	d := &Dict{pool: p}
	err := p.RunTx(func(tx *pmemobj.Tx) error {
		hdr, err := tx.Alloc(headerSize)
		if err != nil {
			return err
		}
		buckets, err := tx.Alloc(initialBucket * slotSize)
		if err != nil {
			return err
		}
		revDir, err := tx.Alloc(revDirCap * 8)
		if err != nil {
			return err
		}
		arena, err := tx.Alloc(arenaBlock)
		if err != nil {
			return err
		}
		dev := p.Device()
		dev.WriteU64(hdr+hCount, 1)
		dev.WriteU64(hdr+hBucketOff, buckets)
		dev.WriteU64(hdr+hBucketCap, initialBucket)
		dev.WriteU64(hdr+hRevDirOff, revDir)
		dev.WriteU64(hdr+hArenaOff, arena)
		dev.WriteU64(hdr+hArenaUsed, 0)
		dev.WriteU64(hdr+hArenaCap, arenaBlock)
		d.hdr = hdr
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("dict: create: %w", err)
	}
	return d, nil
}

// Open attaches to an existing dictionary at header offset hdr.
func Open(p *pmemobj.Pool, hdr uint64) *Dict {
	return &Dict{pool: p, hdr: hdr}
}

// Offset returns the header offset for persisting in a root object.
func (d *Dict) Offset() uint64 { return d.hdr }

// Count returns the number of distinct strings in the dictionary.
func (d *Dict) Count() uint64 {
	return d.pool.Device().ReadU64(d.hdr+hCount) - 1
}

// fnv1a is the 64-bit FNV-1a hash, inlined to avoid allocations.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	if h == 0 { // reserve 0 as the empty-slot marker
		h = 1
	}
	return h
}

// Lookup returns the code for s without inserting.
func (d *Dict) Lookup(s string) (uint64, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.lookupLocked(s, fnv1a(s))
}

func (d *Dict) lookupLocked(s string, h uint64) (uint64, bool) {
	dev := d.pool.Device()
	arr := dev.ReadU64(d.hdr + hBucketOff)
	capacity := dev.ReadU64(d.hdr + hBucketCap)
	mask := capacity - 1
	for i := h & mask; ; i = (i + 1) & mask {
		slot := arr + i*slotSize
		sh := dev.ReadU64(slot)
		if sh == 0 {
			return 0, false
		}
		if sh == h {
			strOff := dev.ReadU64(slot + 8)
			if d.readString(strOff) == s {
				return dev.ReadU64(slot + 16), true
			}
		}
	}
}

// Encode returns the code for s, inserting it if new. The insert is
// failure-atomic: after a crash either the string is fully present with
// its code or absent entirely.
func (d *Dict) Encode(s string) (uint64, error) {
	h := fnv1a(s)
	d.mu.RLock()
	code, ok := d.lookupLocked(s, h)
	d.mu.RUnlock()
	if ok {
		return code, nil
	}
	// Pool transaction first, d.mu inside it — the same order EncodeTx
	// imposes (its caller already holds the pool lock). A concurrent
	// Encode during a bulk-load batch therefore parks on the pool lock
	// holding nothing, instead of deadlocking the batch's EncodeTx.
	err := d.pool.RunTx(func(tx *pmemobj.Tx) error {
		var err error
		code, err = d.encodeInTx(tx, s, h)
		return err
	})
	if err != nil {
		return 0, fmt.Errorf("dict: encode %q: %w", s, err)
	}
	return code, nil
}

// EncodeTx is Encode running inside the caller's already-open pool
// transaction: the insert becomes failure-atomic with the caller's
// batch instead of paying a transaction (and its commit fences) of its
// own. The bulk loader uses it to intern the many unique string values
// an ingest batch carries without breaking the batch.
func (d *Dict) EncodeTx(tx *pmemobj.Tx, s string) (uint64, error) {
	h := fnv1a(s)
	d.mu.RLock()
	code, ok := d.lookupLocked(s, h)
	d.mu.RUnlock()
	if ok {
		return code, nil
	}
	code, err := d.encodeInTx(tx, s, h)
	if err != nil {
		return 0, fmt.Errorf("dict: encode %q: %w", s, err)
	}
	return code, nil
}

// encodeInTx interns s inside the given pool transaction, taking d.mu
// for writing only after the pool lock is held (the process-wide order
// for this lock pair). Re-checks under the write lock before inserting.
func (d *Dict) encodeInTx(tx *pmemobj.Tx, s string, h uint64) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if code, ok := d.lookupLocked(s, h); ok {
		return code, nil
	}
	return d.insertLocked(tx, s, h)
}

// insertLocked performs the new-string insert inside tx. Caller holds
// d.mu for writing and has verified the string is absent.
func (d *Dict) insertLocked(tx *pmemobj.Tx, s string, h uint64) (uint64, error) {
	dev := d.pool.Device()
	capacity := dev.ReadU64(d.hdr + hBucketCap)
	count := dev.ReadU64(d.hdr+hCount) - 1
	if (count+1)*10 >= capacity*7 { // load factor 0.7
		if err := d.growLocked(tx, capacity*2); err != nil {
			return 0, err
		}
	}
	strOff, err := d.appendString(tx, s)
	if err != nil {
		return 0, err
	}
	if err := tx.Snapshot(d.hdr+hCount, 8); err != nil {
		return 0, err
	}
	code := dev.ReadU64(d.hdr + hCount)
	dev.WriteU64(d.hdr+hCount, code+1)

	// Forward table insert.
	arr := dev.ReadU64(d.hdr + hBucketOff)
	mask := dev.ReadU64(d.hdr+hBucketCap) - 1
	i := h & mask
	for {
		slot := arr + i*slotSize
		if dev.ReadU64(slot) == 0 {
			if err := tx.Snapshot(slot, slotSize); err != nil {
				return 0, err
			}
			dev.WriteU64(slot+8, strOff)
			dev.WriteU64(slot+16, code)
			dev.WriteU64(slot, h) // hash written last: slot valid only when complete
			break
		}
		i = (i + 1) & mask
	}

	// Reverse table insert.
	if err := d.setReverse(tx, code, strOff); err != nil {
		return 0, err
	}
	return code, nil
}

// Decode translates a code back to its string. Hot codes are served from
// the volatile DRAM cache; cold ones read the persistent reverse table
// and populate the cache.
func (d *Dict) Decode(code uint64) (string, error) {
	if s, ok := d.decodeCache.Load(code); ok {
		return s.(string), nil
	}
	dev := d.pool.Device()
	if code == 0 || code >= dev.ReadU64(d.hdr+hCount) {
		return "", fmt.Errorf("%w: %d", ErrUnknownCode, code)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	dir := dev.ReadU64(d.hdr + hRevDirOff)
	blockIdx := code / revBlockCodes
	block := dev.ReadU64(dir + blockIdx*8)
	if block == 0 {
		return "", fmt.Errorf("%w: %d (missing reverse block)", ErrUnknownCode, code)
	}
	strOff := dev.ReadU64(block + (code%revBlockCodes)*8)
	if strOff == 0 {
		return "", fmt.Errorf("%w: %d", ErrUnknownCode, code)
	}
	s := d.readString(strOff)
	d.decodeCache.Store(code, s)
	return s, nil
}

// readString reads a length-prefixed string at off.
func (d *Dict) readString(off uint64) string {
	dev := d.pool.Device()
	n := dev.ReadU64(off)
	if n == 0 {
		return ""
	}
	buf := make([]byte, n)
	dev.ReadBytes(off+8, buf)
	return string(buf)
}

// appendString stores s in the arena and returns its offset.
func (d *Dict) appendString(tx *pmemobj.Tx, s string) (uint64, error) {
	dev := d.pool.Device()
	need := uint64(8 + (len(s)+7)/8*8)
	if need > arenaBlock {
		return 0, fmt.Errorf("dict: string of %d bytes exceeds arena block", len(s))
	}
	used := dev.ReadU64(d.hdr + hArenaUsed)
	capacity := dev.ReadU64(d.hdr + hArenaCap)
	if used+need > capacity {
		blk, err := tx.Alloc(arenaBlock)
		if err != nil {
			return 0, err
		}
		if err := tx.Snapshot(d.hdr+hArenaOff, 24); err != nil {
			return 0, err
		}
		dev.WriteU64(d.hdr+hArenaOff, blk)
		dev.WriteU64(d.hdr+hArenaUsed, 0)
		dev.WriteU64(d.hdr+hArenaCap, arenaBlock)
		used = 0
	} else {
		if err := tx.Snapshot(d.hdr+hArenaUsed, 8); err != nil {
			return 0, err
		}
	}
	arena := dev.ReadU64(d.hdr + hArenaOff)
	off := arena + used
	dev.WriteU64(off, uint64(len(s)))
	dev.WriteBytes(off+8, []byte(s))
	dev.WriteU64(d.hdr+hArenaUsed, used+need)
	tx.NoteWrite(off, need)
	return off, nil
}

// setReverse records code→strOff, allocating the reverse block on demand.
func (d *Dict) setReverse(tx *pmemobj.Tx, code, strOff uint64) error {
	dev := d.pool.Device()
	dir := dev.ReadU64(d.hdr + hRevDirOff)
	blockIdx := code / revBlockCodes
	if blockIdx >= revDirCap {
		return ErrFull
	}
	block := dev.ReadU64(dir + blockIdx*8)
	if block == 0 {
		blk, err := tx.Alloc(revBlockCodes * 8)
		if err != nil {
			return err
		}
		if err := tx.Snapshot(dir+blockIdx*8, 8); err != nil {
			return err
		}
		dev.WriteU64(dir+blockIdx*8, blk)
		block = blk
	}
	slot := block + (code%revBlockCodes)*8
	if err := tx.Snapshot(slot, 8); err != nil {
		return err
	}
	dev.WriteU64(slot, strOff)
	return nil
}

// growLocked rehashes the forward table into a bucket array of newCap
// slots. Caller holds d.mu for writing and runs inside tx.
func (d *Dict) growLocked(tx *pmemobj.Tx, newCap uint64) error {
	dev := d.pool.Device()
	newArr, err := tx.Alloc(newCap * slotSize)
	if err != nil {
		return err
	}
	oldArr := dev.ReadU64(d.hdr + hBucketOff)
	oldCap := dev.ReadU64(d.hdr + hBucketCap)
	mask := newCap - 1
	for i := uint64(0); i < oldCap; i++ {
		slot := oldArr + i*slotSize
		h := dev.ReadU64(slot)
		if h == 0 {
			continue
		}
		j := h & mask
		for dev.ReadU64(newArr+j*slotSize) != 0 {
			j = (j + 1) & mask
		}
		dst := newArr + j*slotSize
		dev.WriteU64(dst+8, dev.ReadU64(slot+8))
		dev.WriteU64(dst+16, dev.ReadU64(slot+16))
		dev.WriteU64(dst, h)
	}
	tx.NoteWrite(newArr, newCap*slotSize)
	if err := tx.Snapshot(d.hdr+hBucketOff, 16); err != nil {
		return err
	}
	dev.WriteU64(d.hdr+hBucketOff, newArr)
	dev.WriteU64(d.hdr+hBucketCap, newCap)
	return tx.Free(oldArr)
}

// CheckIntegrity verifies the code↔string bijection of the persistent
// image and returns a description of each violation (nil means healthy):
// every occupied forward slot holds a valid in-bounds string whose hash
// matches, a code in [1, next), unique among slots, and the reverse table
// maps that code back to the same string; every assigned code decodes.
// Used by the fsck harness (internal/fsck) after crash recovery.
func (d *Dict) CheckIntegrity() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var probs []string
	dev := d.pool.Device()
	devSize := uint64(dev.Size())
	next := dev.ReadU64(d.hdr + hCount)
	if next == 0 {
		return []string{"dict: next-code counter is 0 (codes start at 1)"}
	}
	arr := dev.ReadU64(d.hdr + hBucketOff)
	capacity := dev.ReadU64(d.hdr + hBucketCap)
	if capacity == 0 || capacity&(capacity-1) != 0 || arr+capacity*slotSize > devSize {
		return []string{fmt.Sprintf("dict: bucket array [%#x, cap %d] invalid", arr, capacity)}
	}

	codeStr := make(map[uint64]string, next-1)
	for i := uint64(0); i < capacity; i++ {
		slot := arr + i*slotSize
		h := dev.ReadU64(slot)
		if h == 0 {
			continue
		}
		strOff := dev.ReadU64(slot + 8)
		code := dev.ReadU64(slot + 16)
		if strOff+8 > devSize || strOff+8+dev.ReadU64(strOff) > devSize {
			probs = append(probs, fmt.Sprintf("dict: slot %d string offset %#x out of bounds", i, strOff))
			continue
		}
		s := d.readString(strOff)
		if fnv1a(s) != h {
			probs = append(probs, fmt.Sprintf("dict: slot %d hash %#x does not match string %q", i, h, s))
		}
		if code == 0 || code >= next {
			probs = append(probs, fmt.Sprintf("dict: slot %d code %d outside [1, %d)", i, code, next))
			continue
		}
		if prev, dup := codeStr[code]; dup {
			probs = append(probs, fmt.Sprintf("dict: code %d assigned to both %q and %q", code, prev, s))
			continue
		}
		codeStr[code] = s
	}

	// Reverse direction: every assigned code must decode to the string the
	// forward table stores for it.
	dir := dev.ReadU64(d.hdr + hRevDirOff)
	for code := uint64(1); code < next; code++ {
		blockIdx := code / revBlockCodes
		if blockIdx >= revDirCap {
			probs = append(probs, fmt.Sprintf("dict: code %d beyond reverse directory", code))
			continue
		}
		block := dev.ReadU64(dir + blockIdx*8)
		var strOff uint64
		if block != 0 && block+(code%revBlockCodes)*8+8 <= devSize {
			strOff = dev.ReadU64(block + (code%revBlockCodes)*8)
		}
		fwd, inFwd := codeStr[code]
		if strOff == 0 || strOff+8 > devSize {
			probs = append(probs, fmt.Sprintf("dict: code %d has no reverse mapping", code))
			continue
		}
		rev := d.readString(strOff)
		if !inFwd {
			probs = append(probs, fmt.Sprintf("dict: code %d (%q) missing from the forward table", code, rev))
			continue
		}
		if rev != fwd {
			probs = append(probs, fmt.Sprintf("dict: code %d decodes to %q but encodes from %q", code, rev, fwd))
		}
	}
	return probs
}
