package jit

import (
	"errors"
	"fmt"

	"poseidon/internal/query"
	"poseidon/internal/storage"
)

// ErrUnsupported reports a plan construct the JIT cannot compile; the
// engine falls back to the AOT interpreter for such plans.
var ErrUnsupported = errors.New("jit: plan not compilable")

// The code generator follows the paper's §6.2 design: a visitor walks the
// operator tree and produces, per operator, an entry and a consume basic
// block; complex operators contribute more blocks. The whole pipeline is
// fused into a single IR function — tuples live in virtual registers and
// never materialize between operators. Loops are built with the
// while_loop / while_loop_condition abstractions.

type builder struct {
	fn  *Fn
	cur int // current block index
}

func newBuilder(name string) *builder {
	fn := &Fn{Name: name}
	b := &builder{fn: fn}
	b.newBlock("entry")
	return b
}

func (b *builder) newBlock(name string) int {
	b.fn.Blocks = append(b.fn.Blocks, &Block{Name: name, Kind: TermRet})
	return len(b.fn.Blocks) - 1
}

func (b *builder) block() *Block { return b.fn.Blocks[b.cur] }

func (b *builder) setBlock(i int) { b.cur = i }

func (b *builder) emit(in Instr) {
	blk := b.block()
	blk.Instrs = append(blk.Instrs, in)
}

func (b *builder) val() Reg  { r := Reg(b.fn.NumVals); b.fn.NumVals++; return r }
func (b *builder) node() Reg { r := Reg(b.fn.NumNodes); b.fn.NumNodes++; return r }
func (b *builder) rel() Reg  { r := Reg(b.fn.NumRels); b.fn.NumRels++; return r }
func (b *builder) iter() Reg { r := Reg(b.fn.NumIters); b.fn.NumIters++; return r }
func (b *builder) slot() Reg { r := Reg(b.fn.NumSlots); b.fn.NumSlots++; return r }

func (b *builder) jump(to int) {
	blk := b.block()
	blk.Kind, blk.To = TermJump, to
}

func (b *builder) branch(cond Reg, t, f int) {
	blk := b.block()
	blk.Kind, blk.Cond, blk.To, blk.Else = TermBranch, cond, t, f
}

func (b *builder) ret() { b.block().Kind = TermRet }

// whileLoop is the paper's while_loop_condition abstraction: it emits
//
//	header: cond := condGen(); br cond, body, exit
//	body:   bodyGen(); jump header
//	exit:
//
// and leaves the builder positioned at exit. bodyGen receives the header
// index as its continue target.
func (b *builder) whileLoop(name string, condGen func() Reg, bodyGen func(header, exit int)) {
	header := b.newBlock(name + ".header")
	body := b.newBlock(name + ".body")
	exit := b.newBlock(name + ".exit")
	b.jump(header)
	b.setBlock(header)
	cond := condGen()
	b.branch(cond, body, exit)
	b.setBlock(body)
	bodyGen(header, exit)
	// The builder position after the body is its fall-through point (the
	// operator "return path" of Fig 4): loop back to the header.
	b.jump(header)
	b.setBlock(exit)
}

// valueType is the compile-time type lattice used for comparison
// specialization (§6.2: "type information can be handled at
// compile-time").
type valueType uint8

const (
	tyUnknown valueType = iota
	tyInt
	tyFloat
	tyBool
	tyString
)

func typeOfValue(v storage.Value) valueType {
	switch v.Type {
	case storage.TypeInt:
		return tyInt
	case storage.TypeFloat:
		return tyFloat
	case storage.TypeBool:
		return tyBool
	case storage.TypeString:
		return tyString
	default:
		return tyUnknown
	}
}

// gen is the per-compilation code generator state.
type gen struct {
	b      *builder
	cols   []Col // current tuple layout (register per column)
	types  map[Reg]valueType
	consts map[storage.Value]Reg
	params map[string]Reg
	chunk  bool // pipeline driven by a chunk morsel (OpLoadChunk leaf)
}

// Compile translates the streaming pipeline of a plan into an IR
// function. When morsel is true, the leaf scan iterates a single chunk
// provided by the execution machine (adaptive/parallel mode); otherwise
// the generated function scans the whole table.
func Compile(mp *query.MorselPlan, morsel bool) (*Fn, error) {
	// Build the leaf-first operator chain of the pipeline subtree.
	var ops []query.Op
	for cur := mp.Pipeline; cur != nil; cur = childOf(cur) {
		ops = append(ops, cur)
	}
	// Reverse to leaf-first.
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}

	g := &gen{
		b:      newBuilder("pipeline"),
		types:  make(map[Reg]valueType),
		consts: make(map[storage.Value]Reg),
		params: make(map[string]Reg),
		chunk:  morsel,
	}
	body := g.b.newBlock("pipeline.start")
	g.b.jump(body)
	g.b.setBlock(body)
	if err := g.genFrom(ops, 0); err != nil {
		return nil, err
	}
	g.b.ret()
	fn := g.b.fn
	if err := fn.Verify(); err != nil {
		return nil, err
	}
	return fn, nil
}

func childOf(op query.Op) query.Op {
	type childer interface{ Child() query.Op }
	if c, ok := op.(childer); ok {
		return c.Child()
	}
	return queryChild(op)
}

// queryChild mirrors query.Op's unexported child(); re-derived here from
// the concrete operator types.
func queryChild(op query.Op) query.Op {
	switch o := op.(type) {
	case *query.Expand:
		return o.Input
	case *query.CreateNode:
		return o.Input
	case *query.GetNode:
		return o.Input
	case *query.NodeLookup:
		return o.Input
	case *query.Filter:
		return o.Input
	case *query.Project:
		return o.Input
	case *query.Limit:
		return o.Input
	case *query.CreateRel:
		return o.Input
	case *query.SetProps:
		return o.Input
	case *query.Delete:
		return o.Input
	default:
		return nil
	}
}

// genFrom generates ops[k] and, inline within its body, everything above
// it (the produce/consume fusion). cont is implicit: loops provide their
// own continue targets.
func (g *gen) genFrom(ops []query.Op, k int) error {
	if k == len(ops) {
		return g.genEmit()
	}
	switch o := ops[k].(type) {
	case *query.NodeScan:
		return g.genNodeScan(o, ops, k)
	case *query.RelScan:
		return g.genRelScan(o, ops, k)
	case *query.NodeByID:
		return g.genNodeByID(o, ops, k)
	case *query.IndexScan:
		return g.genIndexScan(o, ops, k)
	case *query.CreateNode:
		return g.genCreateNode(o, ops, k)
	case *query.Expand:
		return g.genExpand(o, ops, k)
	case *query.GetNode:
		return g.genGetNode(o, ops, k)
	case *query.NodeLookup:
		return g.genNodeLookup(o, ops, k)
	case *query.Filter:
		return g.genFilter(o, ops, k)
	case *query.Project:
		return g.genProject(o, ops, k)
	case *query.Limit:
		return g.genLimit(o, ops, k)
	case *query.CreateRel:
		return g.genCreateRel(o, ops, k)
	case *query.SetProps:
		return g.genSetProps(o, ops, k)
	case *query.Delete:
		return g.genDelete(o, ops, k)
	default:
		return fmt.Errorf("%w: operator %T", ErrUnsupported, ops[k])
	}
}

func (g *gen) genEmit() error {
	b := g.b
	cont := b.val()
	b.emit(Instr{Op: OpEmit, Dst: cont, A: NoReg, B: NoReg, Cols: append([]Col(nil), g.cols...)})
	if b.fn.OutCols == nil {
		b.fn.OutCols = append([]Col(nil), g.cols...)
	}
	// If the consumer stops, return from the whole pipeline function.
	next := b.newBlock("emit.cont")
	stop := b.newBlock("emit.stop")
	b.branch(cont, next, stop)
	b.setBlock(stop)
	b.ret()
	b.setBlock(next)
	return nil
}

func (g *gen) genNodeScan(o *query.NodeScan, ops []query.Op, k int) error {
	b := g.b
	it := b.iter()
	if g.chunk {
		chunkV := b.val()
		b.emit(Instr{Op: OpLoadChunk, Dst: chunkV, A: NoReg, B: NoReg})
		b.emit(Instr{Op: OpIterChunkInit, Dst: it, A: chunkV, B: NoReg, Sym: o.Label})
	} else {
		b.emit(Instr{Op: OpIterNodesInit, Dst: it, A: NoReg, B: NoReg, Sym: o.Label})
	}
	var genErr error
	b.whileLoop("nodescan", func() Reg {
		c := b.val()
		b.emit(Instr{Op: OpIterNext, Dst: c, A: it, B: NoReg})
		return c
	}, func(header, exit int) {
		n := b.node()
		b.emit(Instr{Op: OpIterNodeGet, Dst: n, A: it, B: NoReg})
		saved := g.cols
		g.cols = []Col{{Kind: ColNode, Reg: n}}
		genErr = g.genFrom(ops, k+1)
		g.cols = saved
	})
	return genErr
}

func (g *gen) genRelScan(o *query.RelScan, ops []query.Op, k int) error {
	b := g.b
	it := b.iter()
	if g.chunk {
		chunkV := b.val()
		b.emit(Instr{Op: OpLoadChunk, Dst: chunkV, A: NoReg, B: NoReg})
		b.emit(Instr{Op: OpIterRelChunkInit, Dst: it, A: chunkV, B: NoReg, Sym: o.Label})
	} else {
		b.emit(Instr{Op: OpIterRelsInit, Dst: it, A: NoReg, B: NoReg, Sym: o.Label})
	}
	var genErr error
	b.whileLoop("relscan", func() Reg {
		c := b.val()
		b.emit(Instr{Op: OpIterNext, Dst: c, A: it, B: NoReg})
		return c
	}, func(header, exit int) {
		r := b.rel()
		b.emit(Instr{Op: OpIterRelGet, Dst: r, A: it, B: NoReg})
		saved := g.cols
		g.cols = []Col{{Kind: ColRel, Reg: r}}
		genErr = g.genFrom(ops, k+1)
		g.cols = saved
	})
	return genErr
}

func (g *gen) genNodeByID(o *query.NodeByID, ops []query.Op, k int) error {
	b := g.b
	idV := g.paramReg(o.Param)
	n := b.node()
	found := b.val()
	b.emit(Instr{Op: OpGetNode, Dst: n, Dst2: found, A: idV, B: NoReg})
	body := b.newBlock("byid.body")
	exit := b.newBlock("byid.exit")
	b.branch(found, body, exit)
	b.setBlock(body)
	saved := g.cols
	g.cols = []Col{{Kind: ColNode, Reg: n}}
	if err := g.genFrom(ops, k+1); err != nil {
		return err
	}
	g.cols = saved
	b.jump(exit)
	b.setBlock(exit)
	return nil
}

func (g *gen) genIndexScan(o *query.IndexScan, ops []query.Op, k int) error {
	b := g.b
	keyV, err := g.genExpr(o.Value)
	if err != nil {
		return err
	}
	it := b.iter()
	b.emit(Instr{Op: OpIterIndex, Dst: it, A: keyV, B: NoReg, Sym: o.Label + "\x00" + o.Key})
	var genErr error
	b.whileLoop("idxscan", func() Reg {
		c := b.val()
		b.emit(Instr{Op: OpIterNext, Dst: c, A: it, B: NoReg})
		return c
	}, func(header, exit int) {
		n := b.node()
		b.emit(Instr{Op: OpIterNodeGet, Dst: n, A: it, B: NoReg})
		saved := g.cols
		g.cols = []Col{{Kind: ColNode, Reg: n}}
		genErr = g.genFrom(ops, k+1)
		g.cols = saved
	})
	return genErr
}

func (g *gen) genCreateNode(o *query.CreateNode, ops []query.Op, k int) error {
	b := g.b
	pairs, err := g.genPairs(o.Props)
	if err != nil {
		return err
	}
	n := b.node()
	b.emit(Instr{Op: OpCreateNode, Dst: n, A: NoReg, B: NoReg, Sym: o.Label, Pairs: pairs})
	saved := g.cols
	if o.Input == nil {
		g.cols = []Col{{Kind: ColNode, Reg: n}}
	} else {
		g.cols = append(append([]Col(nil), g.cols...), Col{Kind: ColNode, Reg: n})
	}
	if err := g.genFrom(ops, k+1); err != nil {
		return err
	}
	g.cols = saved
	return nil
}

func (g *gen) genExpand(o *query.Expand, ops []query.Op, k int) error {
	if o.Col >= len(g.cols) || g.cols[o.Col].Kind != ColNode {
		return fmt.Errorf("%w: Expand column %d is not a node", ErrUnsupported, o.Col)
	}
	nodeReg := g.cols[o.Col].Reg
	dirs := []Opcode{}
	switch o.Dir {
	case query.Out:
		dirs = append(dirs, OpIterOutRels)
	case query.In:
		dirs = append(dirs, OpIterInRels)
	case query.Both:
		dirs = append(dirs, OpIterOutRels, OpIterInRels)
	}
	b := g.b
	for _, dirOp := range dirs {
		it := b.iter()
		b.emit(Instr{Op: dirOp, Dst: it, A: nodeReg, B: NoReg, Sym: o.RelLabel})
		var genErr error
		b.whileLoop("expand", func() Reg {
			c := b.val()
			b.emit(Instr{Op: OpIterNext, Dst: c, A: it, B: NoReg})
			return c
		}, func(header, exit int) {
			r := b.rel()
			b.emit(Instr{Op: OpIterRelGet, Dst: r, A: it, B: NoReg})
			saved := g.cols
			g.cols = append(append([]Col(nil), g.cols...), Col{Kind: ColRel, Reg: r})
			genErr = g.genFrom(ops, k+1)
			g.cols = saved
		})
		if genErr != nil {
			return genErr
		}
	}
	return nil
}

func (g *gen) genGetNode(o *query.GetNode, ops []query.Op, k int) error {
	if o.RelCol >= len(g.cols) || g.cols[o.RelCol].Kind != ColRel {
		return fmt.Errorf("%w: GetNode column %d is not a relationship", ErrUnsupported, o.RelCol)
	}
	b := g.b
	relReg := g.cols[o.RelCol].Reg
	idV := b.val()
	switch o.End {
	case query.Src:
		b.emit(Instr{Op: OpRelSrcID, Dst: idV, A: relReg, B: NoReg})
	case query.Dst:
		b.emit(Instr{Op: OpRelDstID, Dst: idV, A: relReg, B: NoReg})
	case query.Other:
		if o.OtherCol >= len(g.cols) || g.cols[o.OtherCol].Kind != ColNode {
			return fmt.Errorf("%w: GetNode other-column %d is not a node", ErrUnsupported, o.OtherCol)
		}
		b.emit(Instr{Op: OpRelOtherID, Dst: idV, A: relReg, B: g.cols[o.OtherCol].Reg})
	}
	g.types[idV] = tyInt
	n := b.node()
	found := b.val()
	b.emit(Instr{Op: OpGetNode, Dst: n, Dst2: found, A: idV, B: NoReg})
	body := b.newBlock("getnode.body")
	exit := b.newBlock("getnode.exit")
	b.branch(found, body, exit)
	b.setBlock(body)
	saved := g.cols
	g.cols = append(append([]Col(nil), g.cols...), Col{Kind: ColNode, Reg: n})
	if err := g.genFrom(ops, k+1); err != nil {
		return err
	}
	g.cols = saved
	b.jump(exit)
	b.setBlock(exit)
	return nil
}

func (g *gen) genNodeLookup(o *query.NodeLookup, ops []query.Op, k int) error {
	b := g.b
	keyV, err := g.genExpr(o.Value)
	if err != nil {
		return err
	}
	it := b.iter()
	b.emit(Instr{Op: OpIterIndex, Dst: it, A: keyV, B: NoReg, Sym: o.Label + "\x00" + o.Key})
	var genErr error
	b.whileLoop("nodelookup", func() Reg {
		c := b.val()
		b.emit(Instr{Op: OpIterNext, Dst: c, A: it, B: NoReg})
		return c
	}, func(header, exit int) {
		n := b.node()
		b.emit(Instr{Op: OpIterNodeGet, Dst: n, A: it, B: NoReg})
		saved := g.cols
		g.cols = append(append([]Col(nil), g.cols...), Col{Kind: ColNode, Reg: n})
		genErr = g.genFrom(ops, k+1)
		g.cols = saved
	})
	return genErr
}

func (g *gen) genFilter(o *query.Filter, ops []query.Op, k int) error {
	b := g.b
	cond, err := g.genExpr(o.Pred)
	if err != nil {
		return err
	}
	pass := b.newBlock("filter.pass")
	skip := b.newBlock("filter.skip")
	b.branch(cond, pass, skip)
	b.setBlock(pass)
	if err := g.genFrom(ops, k+1); err != nil {
		return err
	}
	b.jump(skip)
	b.setBlock(skip)
	return nil
}

func (g *gen) genProject(o *query.Project, ops []query.Op, k int) error {
	newCols := make([]Col, len(o.Cols))
	for i, ex := range o.Cols {
		r, err := g.genExpr(ex)
		if err != nil {
			return err
		}
		newCols[i] = Col{Kind: ColVal, Reg: r}
	}
	saved := g.cols
	g.cols = newCols
	err := g.genFrom(ops, k+1)
	g.cols = saved
	return err
}

func (g *gen) genLimit(o *query.Limit, ops []query.Op, k int) error {
	b := g.b
	// Counter in a stack slot (naive codegen); mem2reg will keep it a
	// slot here because it crosses blocks, exactly like an LLVM alloca
	// that survives -mem2reg when its address escapes a single block.
	slot := b.slot()
	// Allocas belong to the function entry block (§6.2 requirement 2).
	entry := &b.fn.Blocks[0].Instrs
	*entry = append(*entry, Instr{Op: OpAlloca, Dst: slot, A: NoReg, B: NoReg, Val: storage.IntValue(0)})

	cur := b.val()
	b.emit(Instr{Op: OpLoad, Dst: cur, A: slot, B: NoReg})
	limV := g.constReg(storage.IntValue(int64(o.N)))
	cond := b.val()
	b.emit(Instr{Op: OpCmpI64, Dst: cond, A: cur, B: limV, Aux: cmpLt})
	body := b.newBlock("limit.body")
	stop := b.newBlock("limit.stop")
	b.branch(cond, body, stop)
	b.setBlock(stop)
	b.ret() // limit reached: terminate the pipeline function
	b.setBlock(body)
	one := g.constReg(storage.IntValue(1))
	inc := b.val()
	b.emit(Instr{Op: OpAddI64, Dst: inc, A: cur, B: one})
	b.emit(Instr{Op: OpStore, Dst: slot, A: inc, B: NoReg})
	return g.genFrom(ops, k+1)
}

func (g *gen) genCreateRel(o *query.CreateRel, ops []query.Op, k int) error {
	if o.SrcCol >= len(g.cols) || g.cols[o.SrcCol].Kind != ColNode ||
		o.DstCol >= len(g.cols) || g.cols[o.DstCol].Kind != ColNode {
		return fmt.Errorf("%w: CreateRel endpoints must be nodes", ErrUnsupported)
	}
	pairs, err := g.genPairs(o.Props)
	if err != nil {
		return err
	}
	b := g.b
	r := b.rel()
	b.emit(Instr{
		Op: OpCreateRel, Dst: r,
		A: g.cols[o.SrcCol].Reg, B: g.cols[o.DstCol].Reg,
		Sym: o.Label, Pairs: pairs,
	})
	saved := g.cols
	g.cols = append(append([]Col(nil), g.cols...), Col{Kind: ColRel, Reg: r})
	err = g.genFrom(ops, k+1)
	g.cols = saved
	return err
}

func (g *gen) genSetProps(o *query.SetProps, ops []query.Op, k int) error {
	if o.Col >= len(g.cols) || g.cols[o.Col].Kind == ColVal {
		return fmt.Errorf("%w: SetProps column %d is not an object", ErrUnsupported, o.Col)
	}
	pairs, err := g.genPairs(o.Props)
	if err != nil {
		return err
	}
	aux := 0
	if g.cols[o.Col].Kind == ColRel {
		aux = 1
	}
	g.b.emit(Instr{Op: OpSetProps, Dst: NoReg, A: g.cols[o.Col].Reg, B: NoReg, Aux: aux, Pairs: pairs})
	return g.genFrom(ops, k+1)
}

func (g *gen) genDelete(o *query.Delete, ops []query.Op, k int) error {
	if o.Col >= len(g.cols) || g.cols[o.Col].Kind == ColVal {
		return fmt.Errorf("%w: Delete column %d is not an object", ErrUnsupported, o.Col)
	}
	aux := 0
	if g.cols[o.Col].Kind == ColRel {
		aux = 1
	}
	g.b.emit(Instr{Op: OpDelete, Dst: NoReg, A: g.cols[o.Col].Reg, B: NoReg, Aux: aux})
	return g.genFrom(ops, k+1)
}

func (g *gen) genPairs(specs []query.PropSpec) ([]Pair, error) {
	pairs := make([]Pair, len(specs))
	for i, s := range specs {
		r, err := g.genExpr(s.Val)
		if err != nil {
			return nil, err
		}
		pairs[i] = Pair{Key: s.Key, Val: r}
	}
	return pairs, nil
}

// constReg memoizes constants into the entry block (§6.2 requirement 2:
// initializations only at the first entry point).
func (g *gen) constReg(v storage.Value) Reg {
	if r, ok := g.consts[v]; ok {
		return r
	}
	r := g.b.val()
	entry := &g.b.fn.Blocks[0].Instrs
	*entry = append(*entry, Instr{Op: OpConst, Dst: r, A: NoReg, B: NoReg, Val: v})
	g.consts[v] = r
	g.types[r] = typeOfValue(v)
	return r
}

func (g *gen) paramReg(name string) Reg {
	if r, ok := g.params[name]; ok {
		return r
	}
	r := g.b.val()
	entry := &g.b.fn.Blocks[0].Instrs
	*entry = append(*entry, Instr{Op: OpLoadParam, Dst: r, A: NoReg, B: NoReg, Sym: name})
	g.params[name] = r
	return r
}

// genExpr generates expression code, returning the value register.
func (g *gen) genExpr(e query.Expr) (Reg, error) {
	b := g.b
	switch x := e.(type) {
	case *query.Const:
		if str, ok := x.Val.(string); ok {
			return g.strConstReg(str), nil
		}
		v, err := encodeConst(x.Val)
		if err != nil {
			return NoReg, err
		}
		return g.constReg(v), nil

	case *query.Param:
		return g.paramReg(x.Name), nil

	case *query.Prop:
		if x.Col >= len(g.cols) {
			return NoReg, fmt.Errorf("%w: prop column %d out of range", ErrUnsupported, x.Col)
		}
		r := b.val()
		switch g.cols[x.Col].Kind {
		case ColNode:
			b.emit(Instr{Op: OpNodeProp, Dst: r, A: g.cols[x.Col].Reg, B: NoReg, Sym: x.Key})
		case ColRel:
			b.emit(Instr{Op: OpRelProp, Dst: r, A: g.cols[x.Col].Reg, B: NoReg, Sym: x.Key})
		default:
			return NoReg, fmt.Errorf("%w: prop of value column", ErrUnsupported)
		}
		return r, nil

	case *query.IDOf:
		if x.Col >= len(g.cols) {
			return NoReg, fmt.Errorf("%w: id column %d out of range", ErrUnsupported, x.Col)
		}
		r := b.val()
		switch g.cols[x.Col].Kind {
		case ColNode:
			b.emit(Instr{Op: OpNodeIDVal, Dst: r, A: g.cols[x.Col].Reg, B: NoReg})
		case ColRel:
			b.emit(Instr{Op: OpRelIDVal, Dst: r, A: g.cols[x.Col].Reg, B: NoReg})
		default:
			return g.cols[x.Col].Reg, nil
		}
		g.types[r] = tyInt
		return r, nil

	case *query.HasLabel:
		if x.Col >= len(g.cols) {
			return NoReg, fmt.Errorf("%w: hasLabel column %d out of range", ErrUnsupported, x.Col)
		}
		r := b.val()
		op := OpNodeLabelEq
		if g.cols[x.Col].Kind == ColRel {
			op = OpRelLabelEq
		}
		b.emit(Instr{Op: op, Dst: r, A: g.cols[x.Col].Reg, B: NoReg, Sym: x.Label})
		g.types[r] = tyBool
		return r, nil

	case *query.Cmp:
		l, err := g.genExpr(x.L)
		if err != nil {
			return NoReg, err
		}
		r, err := g.genExpr(x.R)
		if err != nil {
			return NoReg, err
		}
		dst := b.val()
		op := OpCmpDyn
		lt, rt := g.types[l], g.types[r]
		switch {
		case lt == tyInt && rt == tyInt:
			op = OpCmpI64
		case lt == tyBool && rt == tyBool:
			op = OpCmpBool
		case lt == tyString && rt == tyString && (x.Op == query.Eq || x.Op == query.Ne):
			op = OpCmpCode
		}
		b.emit(Instr{Op: op, Dst: dst, A: l, B: r, Aux: int(x.Op)})
		g.types[dst] = tyBool
		return dst, nil

	case *query.And:
		l, err := g.genExpr(x.L)
		if err != nil {
			return NoReg, err
		}
		r, err := g.genExpr(x.R)
		if err != nil {
			return NoReg, err
		}
		dst := b.val()
		b.emit(Instr{Op: OpAnd, Dst: dst, A: l, B: r})
		g.types[dst] = tyBool
		return dst, nil

	case *query.Or:
		l, err := g.genExpr(x.L)
		if err != nil {
			return NoReg, err
		}
		r, err := g.genExpr(x.R)
		if err != nil {
			return NoReg, err
		}
		dst := b.val()
		b.emit(Instr{Op: OpOr, Dst: dst, A: l, B: r})
		g.types[dst] = tyBool
		return dst, nil

	case *query.Not:
		a, err := g.genExpr(x.X)
		if err != nil {
			return NoReg, err
		}
		dst := b.val()
		b.emit(Instr{Op: OpNot, Dst: dst, A: a, B: NoReg})
		g.types[dst] = tyBool
		return dst, nil

	default:
		return NoReg, fmt.Errorf("%w: expression %T", ErrUnsupported, e)
	}
}

func encodeConst(v any) (storage.Value, error) {
	switch x := v.(type) {
	case int:
		return storage.IntValue(int64(x)), nil
	case int64:
		return storage.IntValue(x), nil
	case float64:
		return storage.FloatValue(x), nil
	case bool:
		return storage.BoolValue(x), nil
	default:
		return storage.Value{}, fmt.Errorf("%w: constant %T", ErrUnsupported, v)
	}
}

// strConstReg interns a string constant: it becomes a dictionary lookup
// when the compiled code is linked against the database instance.
func (g *gen) strConstReg(s string) Reg {
	key := "\x00str:" + s
	if r, ok := g.params[key]; ok {
		return r
	}
	r := g.b.val()
	entry := &g.b.fn.Blocks[0].Instrs
	*entry = append(*entry, Instr{Op: OpConstStr, Dst: r, A: NoReg, B: NoReg, Sym: s})
	g.params[key] = r
	g.types[r] = tyString
	return r
}
