package jit

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"poseidon/internal/core"
	"poseidon/internal/query"
	"poseidon/internal/storage"
)

// randomFn builds a structurally valid random function for codec tests.
func randomFn(rng *rand.Rand) *Fn {
	f := &Fn{
		Name:     "t",
		NumVals:  rng.Intn(16) + 1,
		NumNodes: rng.Intn(4) + 1,
		NumRels:  rng.Intn(4) + 1,
		NumIters: rng.Intn(4) + 1,
		NumSlots: rng.Intn(4),
	}
	nBlocks := rng.Intn(6) + 1
	for b := 0; b < nBlocks; b++ {
		blk := &Block{Name: "b"}
		for i := rng.Intn(5); i > 0; i-- {
			in := Instr{
				Op:   Opcode(rng.Intn(int(OpEmit) + 1)),
				Dst:  Reg(rng.Intn(f.NumVals)),
				Dst2: NoReg,
				A:    Reg(rng.Intn(f.NumVals)),
				B:    NoReg,
				Aux:  rng.Intn(6),
				Val:  storage.IntValue(rng.Int63()),
				Sym:  "sym" + string(rune('a'+rng.Intn(26))),
			}
			if rng.Intn(3) == 0 {
				in.Pairs = []Pair{{Key: "k", Val: Reg(rng.Intn(f.NumVals))}}
			}
			if rng.Intn(3) == 0 {
				in.Cols = []Col{{Kind: ColKind(rng.Intn(3)), Reg: Reg(rng.Intn(f.NumVals))}}
			}
			blk.Instrs = append(blk.Instrs, in)
		}
		switch rng.Intn(3) {
		case 0:
			blk.Kind, blk.To = TermJump, rng.Intn(nBlocks)
		case 1:
			blk.Kind, blk.Cond = TermBranch, Reg(rng.Intn(f.NumVals))
			blk.To, blk.Else = rng.Intn(nBlocks), rng.Intn(nBlocks)
		default:
			blk.Kind = TermRet
		}
		f.Blocks = append(f.Blocks, blk)
	}
	f.OutCols = []Col{{Kind: ColVal, Reg: 0}}
	return f
}

func TestIRCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bundle := &codeBundle{Full: randomFn(rng), Morsel: randomFn(rng)}
		blob, err := encodeBundle(bundle)
		if err != nil {
			return false
		}
		got, err := decodeBundle(blob)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(bundle.Full, got.Full) &&
			reflect.DeepEqual(bundle.Morsel, got.Morsel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestIRCodecRejectsCorruptBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bundle := &codeBundle{Full: randomFn(rng), Morsel: randomFn(rng)}
	blob, err := encodeBundle(bundle)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations must error, not panic or return garbage silently.
	for _, n := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
		if _, err := decodeBundle(blob[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded successfully", n)
		}
	}
}

func TestBlobFramingRoundTrip(t *testing.T) {
	cases := []struct {
		sig  string
		body []byte
	}{
		{"", nil},
		{"NodeScan(Person)", []byte{1, 2, 3}},
		{"long" + string(make([]byte, 300)), make([]byte, 1000)},
	}
	for _, c := range cases {
		blob := joinBlob(c.sig, c.body)
		sig, body, ok := splitBlob(blob)
		if !ok || sig != c.sig || len(body) != len(c.body) {
			t.Errorf("framing round trip failed for sig %q", c.sig)
		}
	}
	if _, _, ok := splitBlob([]byte{1, 2}); ok {
		t.Error("splitBlob accepted a 2-byte blob")
	}
}

func TestCacheCollisionKeepsBothQueries(t *testing.T) {
	// Two different plans: the persistent cache must serve each its own
	// code even though both are probed via a 64-bit hash (full-signature
	// check disambiguates).
	e, _ := buildGraph(t, core.DRAM)
	j, _ := New(e)
	p1 := &query.Plan{Root: &query.NodeScan{Label: "Person"}}
	p2 := &query.Plan{Root: &query.Limit{Input: &query.NodeScan{Label: "Person"}, N: 3}}
	if _, err := j.Compile(p1); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Compile(p2); err != nil {
		t.Fatal(err)
	}
	j.InvalidateSession()
	c1, err := j.Compile(p1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := j.Compile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !c1.FromCache || !c2.FromCache {
		t.Errorf("cache hits: %v, %v, want both", c1.FromCache, c2.FromCache)
	}
	tx := e.Begin()
	defer tx.Abort()
	n := 0
	if _, err := j.Run(tx, p2, nil, func(query.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("limit plan from cache returned %d rows, want 3", n)
	}
}
