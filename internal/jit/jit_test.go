package jit

import (
	"fmt"
	"sort"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/index"
	"poseidon/internal/query"
)

// buildGraph creates a small social graph shared by the JIT tests.
func buildGraph(t *testing.T, mode core.Mode) (*core.Engine, []uint64) {
	t.Helper()
	e, err := core.Open(core.Config{Mode: mode, PoolSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	bl := e.NewBulkLoader()
	var persons []uint64
	for i := 0; i < 500; i++ {
		id, err := bl.AddNode("Person", map[string]any{
			"pid": int64(i), "age": int64(20 + i%50),
		})
		if err != nil {
			t.Fatal(err)
		}
		persons = append(persons, id)
	}
	for i := 0; i < 500; i++ {
		// Ring plus shortcuts: person i knows i+1 and i+7.
		bl.AddRel(persons[i], persons[(i+1)%500], "knows", map[string]any{"w": int64(i)})
		bl.AddRel(persons[i], persons[(i+7)%500], "knows", nil)
	}
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	return e, persons
}

// plansUnderTest is a matrix of plans whose JIT results must match the
// interpreter exactly.
func plansUnderTest() map[string]*query.Plan {
	return map[string]*query.Plan{
		"scan-all": {Root: &query.NodeScan{Label: "Person"}},
		"filter-project": {Root: &query.Project{
			Input: &query.Filter{
				Input: &query.NodeScan{Label: "Person"},
				Pred:  &query.Cmp{Op: query.Lt, L: &query.Prop{Col: 0, Key: "pid"}, R: &query.Const{Val: 25}},
			},
			Cols: []query.Expr{&query.Prop{Col: 0, Key: "pid"}, &query.Prop{Col: 0, Key: "age"}},
		}},
		"param-filter": {Root: &query.Project{
			Input: &query.Filter{
				Input: &query.NodeScan{Label: "Person"},
				Pred:  &query.Cmp{Op: query.Eq, L: &query.Prop{Col: 0, Key: "pid"}, R: &query.Param{Name: "p"}},
			},
			Cols: []query.Expr{&query.IDOf{Col: 0}},
		}},
		"one-hop": {Root: &query.Project{
			Input: &query.GetNode{
				Input: &query.Expand{
					Input: &query.Filter{
						Input: &query.NodeScan{Label: "Person"},
						Pred:  &query.Cmp{Op: query.Eq, L: &query.Prop{Col: 0, Key: "pid"}, R: &query.Param{Name: "p"}},
					},
					Col: 0, Dir: query.Out, RelLabel: "knows",
				},
				RelCol: 1, End: query.Dst,
			},
			Cols: []query.Expr{&query.Prop{Col: 2, Key: "pid"}},
		}},
		"two-hop": {Root: &query.Project{
			Input: &query.GetNode{
				Input: &query.Expand{
					Input: &query.GetNode{
						Input: &query.Expand{
							Input: &query.Filter{
								Input: &query.NodeScan{Label: "Person"},
								Pred:  &query.Cmp{Op: query.Eq, L: &query.Prop{Col: 0, Key: "pid"}, R: &query.Param{Name: "p"}},
							},
							Col: 0, Dir: query.Out, RelLabel: "knows",
						},
						RelCol: 1, End: query.Dst,
					},
					Col: 2, Dir: query.Out, RelLabel: "knows",
				},
				RelCol: 3, End: query.Dst,
			},
			Cols: []query.Expr{&query.Prop{Col: 4, Key: "pid"}},
		}},
		"limit": {Root: &query.Limit{Input: &query.NodeScan{Label: "Person"}, N: 13}},
		"orderby-tail": {Root: &query.Project{
			Input: &query.OrderBy{
				Input: &query.Filter{
					Input: &query.NodeScan{Label: "Person"},
					Pred:  &query.Cmp{Op: query.Lt, L: &query.Prop{Col: 0, Key: "pid"}, R: &query.Const{Val: 40}},
				},
				Key: &query.Prop{Col: 0, Key: "pid"}, Desc: true, Limit: 10,
			},
			Cols: []query.Expr{&query.Prop{Col: 0, Key: "pid"}},
		}},
		"count-tail": {Root: &query.CountAgg{
			Input: &query.Expand{
				Input: &query.NodeScan{Label: "Person"},
				Col:   0, Dir: query.Out, RelLabel: "knows",
			},
		}},
		"rel-scan": {Root: &query.Project{
			Input: &query.Filter{
				Input: &query.RelScan{Label: "knows"},
				Pred:  &query.Cmp{Op: query.Lt, L: &query.Prop{Col: 0, Key: "w"}, R: &query.Const{Val: 5}},
			},
			Cols: []query.Expr{&query.Prop{Col: 0, Key: "w"}},
		}},
		"incoming": {Root: &query.CountAgg{
			Input: &query.Expand{
				Input: &query.Filter{
					Input: &query.NodeScan{Label: "Person"},
					Pred:  &query.Cmp{Op: query.Eq, L: &query.Prop{Col: 0, Key: "pid"}, R: &query.Param{Name: "p"}},
				},
				Col: 0, Dir: query.In, RelLabel: "knows",
			},
		}},
		"bool-logic": {Root: &query.Project{
			Input: &query.Filter{
				Input: &query.NodeScan{Label: "Person"},
				Pred: &query.And{
					L: &query.Cmp{Op: query.Ge, L: &query.Prop{Col: 0, Key: "age"}, R: &query.Const{Val: 30}},
					R: &query.Or{
						L: &query.Cmp{Op: query.Lt, L: &query.Prop{Col: 0, Key: "pid"}, R: &query.Const{Val: 50}},
						R: &query.Cmp{Op: query.Gt, L: &query.Prop{Col: 0, Key: "pid"}, R: &query.Const{Val: 480}},
					},
				},
			},
			Cols: []query.Expr{&query.Prop{Col: 0, Key: "pid"}},
		}},
	}
}

func sortRows(rows []query.Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				if a[k].Type != b[k].Type {
					return a[k].Type < b[k].Type
				}
				return a[k].Int() < b[k].Int()
			}
		}
		return len(a) < len(b)
	})
}

func TestJITMatchesInterpreter(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	j, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	params := query.Params{"p": int64(42)}
	for name, plan := range plansUnderTest() {
		t.Run(name, func(t *testing.T) {
			pr, err := query.Prepare(e, plan)
			if err != nil {
				t.Fatal(err)
			}
			tx := e.Begin()
			defer tx.Abort()
			want, err := pr.Collect(tx, params)
			if err != nil {
				t.Fatal(err)
			}
			var got []query.Row
			st, err := j.Run(tx, plan, params, func(r query.Row) bool {
				got = append(got, r)
				return true
			})
			if err != nil {
				t.Fatal(err)
			}
			if !st.Compiled {
				t.Error("execution did not use compiled code")
			}
			if len(got) != len(want) {
				t.Fatalf("jit returned %d rows, interpreter %d", len(got), len(want))
			}
			sortRows(got)
			sortRows(want)
			for i := range want {
				for k := range want[i] {
					if got[i][k] != want[i][k] {
						t.Fatalf("row %d col %d: jit %v vs interp %v", i, k, got[i][k], want[i][k])
					}
				}
			}
		})
	}
}

func TestJITAdaptiveMatchesInterpreter(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	j, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	plan := plansUnderTest()["bool-logic"]
	pr, _ := query.Prepare(e, plan)
	tx := e.Begin()
	defer tx.Abort()
	want, err := pr.Collect(tx, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []query.Row
	st, err := j.RunAdaptive(tx, plan, nil, 4, func(r query.Row) bool {
		got = append(got, r)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("adaptive returned %d rows, want %d", len(got), len(want))
	}
	sortRows(got)
	sortRows(want)
	for i := range want {
		if got[i][0] != want[i][0] {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
	}
	total := st.Adaptive.InterpretedMorsels + st.Adaptive.CompiledMorsels
	if total == 0 {
		t.Error("adaptive processed no morsels")
	}
}

func TestAdaptiveSwitchesToCompiled(t *testing.T) {
	// Pre-compile so the swap happens immediately: every morsel after the
	// first few must run compiled.
	e, _ := buildGraph(t, core.DRAM)
	j, _ := New(e)
	plan := &query.Plan{Root: &query.NodeScan{Label: "Person"}}
	if _, err := j.Compile(plan); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Abort()
	st, err := j.RunAdaptive(tx, plan, nil, 2, func(query.Row) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if st.Adaptive.CompiledMorsels == 0 {
		t.Errorf("no morsel ran compiled: %+v", st.Adaptive)
	}
}

func TestJITUpdatePlans(t *testing.T) {
	e, persons := buildGraph(t, core.DRAM)
	j, _ := New(e)
	plan := &query.Plan{Root: &query.SetProps{
		Input: &query.NodeByID{Param: "id"},
		Col:   0,
		Props: []query.PropSpec{{Key: "age", Val: &query.Const{Val: 99}}},
	}}
	tx := e.Begin()
	if _, err := j.Run(tx, plan, query.Params{"id": int64(persons[3])}, func(query.Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Verify through the interpreter.
	check := &query.Plan{Root: &query.Project{
		Input: &query.NodeByID{Param: "id"},
		Cols:  []query.Expr{&query.Prop{Col: 0, Key: "age"}},
	}}
	pr, _ := query.Prepare(e, check)
	tx2 := e.Begin()
	defer tx2.Abort()
	rows, err := pr.Collect(tx2, query.Params{"id": int64(persons[3])})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 99 {
		t.Errorf("age = %d, want 99", rows[0][0].Int())
	}

	// Create a node + relationship through compiled code.
	cr := &query.Plan{Root: &query.CreateNode{
		Label: "Comment",
		Props: []query.PropSpec{{Key: "text", Val: &query.Param{Name: "t"}}},
	}}
	tx3 := e.Begin()
	n := 0
	if _, err := j.Run(tx3, cr, query.Params{"t": "hi"}, func(query.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("create emitted %d rows", n)
	}
}

func TestJITIndexScan(t *testing.T) {
	e, persons := buildGraph(t, core.DRAM)
	if err := e.CreateIndex("Person", "pid", index.Volatile); err != nil {
		t.Fatal(err)
	}
	j, _ := New(e)
	plan := &query.Plan{Root: &query.Project{
		Input: &query.IndexScan{Label: "Person", Key: "pid", Value: &query.Param{Name: "p"}},
		Cols:  []query.Expr{&query.IDOf{Col: 0}},
	}}
	tx := e.Begin()
	defer tx.Abort()
	var got []query.Row
	if _, err := j.Run(tx, plan, query.Params{"p": int64(123)}, func(r query.Row) bool {
		got = append(got, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || uint64(got[0][0].Int()) != persons[123] {
		t.Errorf("index scan = %v, want [%d]", got, persons[123])
	}
}

func TestCompileCacheHitsMemoryAndPMem(t *testing.T) {
	e, _ := buildGraph(t, core.PMem)
	j, _ := New(e)
	plan := plansUnderTest()["filter-project"]

	c1, err := j.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if c1.FromCache {
		t.Error("first compilation reported a cache hit")
	}
	c2, err := j.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Error("second compilation did not hit the in-memory cache")
	}

	// Simulate a session restart: in-memory cache gone, persistent cache
	// serves the serialized IR.
	j.InvalidateSession()
	c3, err := j.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !c3.FromCache {
		t.Error("compilation after session reset did not hit the persistent cache")
	}
	if c3.CompileTime > c1.CompileTime*10 {
		t.Errorf("relink time %v not comparable to compile time %v", c3.CompileTime, c1.CompileTime)
	}

	// The relinked code must produce correct results.
	tx := e.Begin()
	defer tx.Abort()
	n := 0
	if _, err := j.Run(tx, plan, nil, func(query.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 25 {
		t.Errorf("relinked code returned %d rows, want 25", n)
	}
}

func TestPersistentCacheSurvivesCrash(t *testing.T) {
	e, err := core.Open(core.Config{Mode: core.PMem, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	bl := e.NewBulkLoader()
	for i := 0; i < 50; i++ {
		bl.AddNode("Person", map[string]any{"pid": int64(i)})
	}
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	j, _ := New(e)
	plan := &query.Plan{Root: &query.NodeScan{Label: "Person"}}
	if _, err := j.Compile(plan); err != nil {
		t.Fatal(err)
	}
	dev := e.Device()
	e.Close()
	dev.Crash()

	e2, err := core.Reopen(dev, core.Config{Mode: core.PMem})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	j2, err := New(e2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := j2.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !c.FromCache {
		t.Error("compiled code did not survive the crash")
	}
	tx := e2.Begin()
	defer tx.Abort()
	n := 0
	if _, err := j2.Run(tx, plan, nil, func(query.Row) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Errorf("post-crash cached code returned %d rows, want 50", n)
	}
}

func TestJITRejectsJoins(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	j, _ := New(e)
	plan := &query.Plan{Root: &query.HashJoin{
		Left:  &query.NodeScan{Label: "Person"},
		Right: &query.NodeScan{Label: "Person"},
		LKey:  &query.IDOf{Col: 0},
		RKey:  &query.IDOf{Col: 0},
	}}
	if _, err := j.Compile(plan); err == nil {
		t.Error("compiling a join plan succeeded")
	}
}

func TestCompileTimeGrowsWithOperators(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	j, _ := New(e)
	small := &query.Plan{Root: &query.NodeScan{Label: "Person"}}
	big := plansUnderTest()["two-hop"]
	cs, err := j.Compile(small)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := j.Compile(big)
	if err != nil {
		t.Fatal(err)
	}
	if cb.Full.fn.NumInstrs() <= cs.Full.fn.NumInstrs() {
		t.Errorf("bigger plan compiled to fewer instructions: %d vs %d",
			cb.Full.fn.NumInstrs(), cs.Full.fn.NumInstrs())
	}
}

func TestJITOnPMemEngine(t *testing.T) {
	// End-to-end on the PMem-mode engine: compiled code runs through the
	// latency-injecting device without issues.
	e, _ := buildGraph(t, core.PMem)
	j, _ := New(e)
	plan := plansUnderTest()["one-hop"]
	tx := e.Begin()
	defer tx.Abort()
	var got []query.Row
	if _, err := j.Run(tx, plan, query.Params{"p": int64(10)}, func(r query.Row) bool {
		got = append(got, r)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	pids := []int64{}
	for _, r := range got {
		pids = append(pids, r[0].Int())
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	if fmt.Sprint(pids) != "[11 17]" {
		t.Errorf("one-hop from 10 = %v, want [11 17]", pids)
	}
}
