package jit

import (
	"strings"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/query"
	"poseidon/internal/storage"
)

// Direct lowering tests over hand-built IR, covering opcodes the plan
// generator reaches rarely (guarded/typed comparisons, bool ops, label
// equality, rel field access) and the machine's error paths.

// runProgram lowers fn and executes it once, returning emitted tuples.
func runProgram(t *testing.T, e *core.Engine, fn *Fn, params query.Params) []query.Tuple {
	t.Helper()
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
	prog, err := Lower(fn)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := query.BindParams(e, params)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Abort()
	ctx := &query.Ctx{E: e, Tx: tx, Params: bound}
	var out []query.Tuple
	exec := prog.NewExec()
	err = exec.Run(ctx, 0, func(tp query.Tuple) (bool, error) {
		cp := make(query.Tuple, len(tp))
		copy(cp, tp)
		out = append(out, cp)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// straightLine builds a single-block function that emits the given value
// registers once.
func straightLine(instrs []Instr, emitRegs []Reg, numVals int) *Fn {
	cols := make([]Col, len(emitRegs))
	for i, r := range emitRegs {
		cols[i] = Col{Kind: ColVal, Reg: r}
	}
	emitDst := Reg(numVals)
	instrs = append(instrs, Instr{Op: OpEmit, Dst: emitDst, A: NoReg, B: NoReg, Cols: cols})
	return &Fn{
		Name:    "t",
		NumVals: numVals + 1,
		Blocks:  []*Block{{Name: "b", Instrs: instrs, Kind: TermRet}},
		OutCols: cols,
	}
}

func TestLowerComparisonOpcodes(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	cases := []struct {
		name string
		op   Opcode
		aux  int
		a, b storage.Value
		want bool
	}{
		{"i64-lt", OpCmpI64, cmpLt, storage.IntValue(-5), storage.IntValue(3), true},
		{"i64-ge", OpCmpI64, cmpGe, storage.IntValue(3), storage.IntValue(3), true},
		{"i64g-int", OpCmpI64Guard, cmpGt, storage.IntValue(9), storage.IntValue(2), true},
		{"i64g-mixed", OpCmpI64Guard, cmpLt, storage.IntValue(1), storage.FloatValue(1.5), true},
		{"bool-eq", OpCmpBool, cmpEq, storage.BoolValue(true), storage.BoolValue(true), true},
		{"bool-lt", OpCmpBool, cmpLt, storage.BoolValue(false), storage.BoolValue(true), true},
		{"code-eq", OpCmpCode, cmpEq, storage.StringValue(7), storage.StringValue(7), true},
		{"code-ne", OpCmpCode, cmpNe, storage.StringValue(7), storage.StringValue(8), true},
		{"dyn-float", OpCmpDyn, cmpLe, storage.FloatValue(1.5), storage.FloatValue(2.0), true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fn := straightLine([]Instr{
				{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, Val: c.a},
				{Op: OpConst, Dst: 1, A: NoReg, B: NoReg, Val: c.b},
				{Op: c.op, Dst: 2, A: 0, B: 1, Aux: c.aux},
			}, []Reg{2}, 3)
			got := runProgram(t, e, fn, nil)
			if len(got) != 1 || got[0][0].Val.Bool() != c.want {
				t.Errorf("result = %v, want %v", got, c.want)
			}
		})
	}
}

func TestLowerBoolAndArith(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	fn := straightLine([]Instr{
		{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, Val: storage.BoolValue(true)},
		{Op: OpConst, Dst: 1, A: NoReg, B: NoReg, Val: storage.BoolValue(false)},
		{Op: OpAnd, Dst: 2, A: 0, B: 1},
		{Op: OpOr, Dst: 3, A: 0, B: 1},
		{Op: OpNot, Dst: 4, A: 1, B: NoReg},
		{Op: OpConst, Dst: 5, A: NoReg, B: NoReg, Val: storage.IntValue(40)},
		{Op: OpConst, Dst: 6, A: NoReg, B: NoReg, Val: storage.IntValue(2)},
		{Op: OpAddI64, Dst: 7, A: 5, B: 6},
	}, []Reg{2, 3, 4, 7}, 8)
	got := runProgram(t, e, fn, nil)
	r := got[0]
	if r[0].Val.Bool() || !r[1].Val.Bool() || !r[2].Val.Bool() || r[3].Val.Int() != 42 {
		t.Errorf("bool/arith row = %v", r)
	}
}

func TestLowerSlotOps(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	fn := straightLine([]Instr{
		{Op: OpAlloca, Dst: 0, A: NoReg, B: NoReg, Val: storage.IntValue(5)},
		{Op: OpLoad, Dst: 0, A: 0, B: NoReg},
		{Op: OpConst, Dst: 1, A: NoReg, B: NoReg, Val: storage.IntValue(1)},
		{Op: OpAddI64, Dst: 2, A: 0, B: 1},
		{Op: OpStore, Dst: 0, A: 2, B: NoReg},
		{Op: OpLoad, Dst: 3, A: 0, B: NoReg},
	}, []Reg{3}, 4)
	fn.NumSlots = 1
	got := runProgram(t, e, fn, nil)
	if got[0][0].Val.Int() != 6 {
		t.Errorf("slot round trip = %v, want 6", got[0][0].Val.Int())
	}
}

func TestLowerRelFieldAccess(t *testing.T) {
	e, persons := buildGraph(t, core.DRAM)
	// Scan rels of a known person and project src/dst/id plus label
	// equality through hand-built IR.
	fn := &Fn{
		Name: "rels", NumVals: 8, NumNodes: 1, NumRels: 1, NumIters: 1,
		Blocks: []*Block{
			{Name: "entry", Instrs: []Instr{
				{Op: OpLoadParam, Dst: 0, A: NoReg, B: NoReg, Sym: "id"},
				{Op: OpGetNode, Dst: 0, Dst2: 1, A: 0, B: NoReg},
				{Op: OpIterOutRels, Dst: 0, A: 0, B: NoReg, Sym: "knows"},
			}, Kind: TermJump, To: 1},
			{Name: "header", Instrs: []Instr{
				{Op: OpIterNext, Dst: 2, A: 0, B: NoReg},
			}, Kind: TermBranch, Cond: 2, To: 2, Else: 3},
			{Name: "body", Instrs: []Instr{
				{Op: OpIterRelGet, Dst: 0, A: 0, B: NoReg},
				{Op: OpRelSrcID, Dst: 3, A: 0, B: NoReg},
				{Op: OpRelDstID, Dst: 4, A: 0, B: NoReg},
				{Op: OpRelIDVal, Dst: 5, A: 0, B: NoReg},
				{Op: OpRelLabelEq, Dst: 6, A: 0, B: NoReg, Sym: "knows"},
				{Op: OpRelOtherID, Dst: 7, A: 0, B: 0},
				{Op: OpEmit, Dst: 2, A: NoReg, B: NoReg, Cols: []Col{
					{Kind: ColVal, Reg: 3}, {Kind: ColVal, Reg: 4},
					{Kind: ColVal, Reg: 6}, {Kind: ColVal, Reg: 7},
				}},
			}, Kind: TermJump, To: 1},
			{Name: "exit", Kind: TermRet},
		},
	}
	got := runProgram(t, e, fn, query.Params{"id": int64(persons[10])})
	if len(got) != 2 { // i knows i+1 and i+7
		t.Fatalf("rows = %d, want 2", len(got))
	}
	for _, r := range got {
		if uint64(r[0].Val.Int()) != persons[10] {
			t.Errorf("src = %v, want %d", r[0].Val.Int(), persons[10])
		}
		if !r[2].Val.Bool() {
			t.Error("label equality false for knows rel")
		}
		if r[1].Val.Int() != r[3].Val.Int() {
			t.Errorf("other-end (%d) != dst (%d) for out rel from src", r[3].Val.Int(), r[1].Val.Int())
		}
	}
}

func TestLowerUnboundParamError(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	fn := straightLine([]Instr{
		{Op: OpLoadParam, Dst: 0, A: NoReg, B: NoReg, Sym: "missing"},
	}, []Reg{0}, 1)
	prog, err := Lower(fn)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Abort()
	ctx := &query.Ctx{E: e, Tx: tx, Params: map[string]storage.Value{}}
	if err := prog.NewExec().Run(ctx, 0, func(query.Tuple) (bool, error) { return true, nil }); err == nil {
		t.Error("unbound parameter did not error")
	}
}

func TestLowerUnknownOpcodeRejected(t *testing.T) {
	fn := straightLine([]Instr{{Op: Opcode(200), Dst: 0, A: NoReg, B: NoReg}}, []Reg{0}, 1)
	if _, err := Lower(fn); err == nil {
		t.Error("unknown opcode lowered successfully")
	}
}

func TestLowerConstStrInternsLazily(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	// "Person" exists in the dictionary; a new string is interned on
	// first execution (compiled CREATE/SET can introduce strings).
	fn := straightLine([]Instr{
		{Op: OpConstStr, Dst: 0, A: NoReg, B: NoReg, Sym: "Person"},
		{Op: OpConstStr, Dst: 1, A: NoReg, B: NoReg, Sym: "never-seen-string"},
	}, []Reg{0, 1}, 2)
	got := runProgram(t, e, fn, nil)
	if got[0][0].Val.Type != storage.TypeString {
		t.Errorf("known string const type = %v", got[0][0].Val.Type)
	}
	if got[0][1].Val.Type != storage.TypeString {
		t.Fatalf("new string const = %v, want interned string", got[0][1].Val)
	}
	if s, err := e.Dict().Decode(got[0][1].Val.Code()); err != nil || s != "never-seen-string" {
		t.Errorf("interned decode = %q, %v", s, err)
	}
}

func TestProgramStringsInSignDump(t *testing.T) {
	// The IR printer must name every opcode used by a realistic pipeline.
	plan := plansUnderTest()["two-hop"]
	mp, _ := query.SplitPipeline(plan)
	fn, _ := Compile(mp, true)
	dump := fn.String()
	for _, tok := range []string{"loadchunk", "iter.chunk", "iter.outrels", "getnode", "rel.dst", "cmp"} {
		if !strings.Contains(dump, tok) {
			t.Errorf("dump missing %q", tok)
		}
	}
}
