// Package jit implements the just-in-time query compiler of §6.2: a
// small LLVM-flavoured intermediate representation with basic blocks, a
// produce/consume code generator that fuses a whole query pipeline into
// one IR function, an optimization pass cascade (PromoteMemToReg,
// SimplifyCFG, LoopUnroll, DCE, InstCombine), a backend that lowers the
// optimized IR into specialized native Go closures (no per-operator
// dispatch, no tuple boxing), a persistent compiled-code cache keyed by
// the query signature, and the adaptive execution mode that interprets
// morsels while compilation runs in the background.
package jit

import (
	"fmt"
	"strings"

	"poseidon/internal/storage"
)

// Reg is a virtual register index. The bank (value, node, relationship,
// iterator or slot) is implied by the opcode operand position.
type Reg int

// NoReg marks an unused operand.
const NoReg Reg = -1

// Opcode enumerates IR instructions. Graph-access opcodes call the
// engine's AOT-compiled access methods (§6.2: generated code reuses
// AOT-compiled code so it stays compliant with the design goals).
type Opcode uint8

// IR instruction set.
const (
	OpNop Opcode = iota

	// Values.
	OpConst     // dst(val) = Val
	OpConstStr  // dst(val) = string constant Sym, dictionary-encoded at link time
	OpLoadParam // dst(val) = params[Sym]
	OpLoadChunk // dst(val) = current morsel chunk index

	// Stack slots — emitted naively by codegen, promoted by mem2reg.
	OpAlloca // dst(slot); Val = initial value
	OpLoad   // dst(val) = slot[A]
	OpStore  // slot[Dst] = val A

	// Arithmetic / logic.
	OpAddI64 // dst(val) = A + B (integers)
	OpAnd    // dst(val) = A && B (bools)
	OpOr
	OpNot // dst(val) = !A

	// Comparisons: dynamic (dictionary-aware) and type-specialized
	// variants; instcombine narrows dyn to typed forms when both operand
	// types are known at compile time (§6.2 requirement 3).
	OpCmpDyn      // dst(val bool) = cmp(Aux=CmpOp, A, B) via CompareValues
	OpCmpI64      // dst = cmp(Aux, A, B) as signed integers
	OpCmpI64Guard // dst = integer compare with a runtime type guard (falls back to dyn)
	OpCmpBool     // dst = cmp(Aux, A, B) as bools
	OpCmpCode     // dst = cmp(Aux==Eq/Ne only, A, B) as dictionary codes

	// Node/relationship field access.
	OpNodeIDVal   // dst(val) = id of node A(node)
	OpRelIDVal    // dst(val) = id of rel A(rel)
	OpNodeProp    // dst(val) = prop Sym of node A(node); nil if absent
	OpRelProp     // dst(val) = prop Sym of rel A(rel)
	OpNodeLabelEq // dst(val bool) = label(node A) == Sym
	OpRelLabelEq  // dst(val bool) = label(rel A) == Sym
	OpRelSrcID    // dst(val) = src id of rel A
	OpRelDstID    // dst(val) = dst id of rel A
	OpRelOtherID  // dst(val) = endpoint of rel A that is not node B(node)

	// Point access (AOT methods; may abort the transaction).
	OpGetNode // dst(node) = GetNode(id from val A); Aux2 dst2(val bool) = found

	// Iterators.
	OpIterNodesInit // dst(iter) over all node chunks; Sym = label filter
	OpIterRelsInit  // dst(iter) over all rel chunks; Sym = label filter
	OpIterChunkInit // dst(iter) over node chunk (val A); Sym = label filter
	OpIterRelChunkInit
	OpIterOutRels // dst(iter) over out-rels of node A; Sym = label filter
	OpIterInRels  // dst(iter) over in-rels of node A; Sym = label filter
	OpIterIndex   // dst(iter) over index (Sym="label\x00key") hits for val A
	OpIterNext    // dst(val bool) = advance iter A
	OpIterNodeGet // dst(node) = current node of iter A
	OpIterRelGet  // dst(rel) = current rel of iter A

	// Updates (IU queries) — call the MVTO transaction methods.
	OpCreateNode // dst(node); Sym = label; Pairs = props from val regs
	OpCreateRel  // dst(rel); Sym = label; A,B = src,dst nodes; Pairs = props
	OpSetProps   // node A or rel A (Aux: 0=node,1=rel); Pairs = props
	OpDelete     // node A or rel A (Aux: 0=node,1=rel)

	// Output: push a tuple of columns; dst(val bool) = downstream wants
	// more.
	OpEmit // Cols = column regs (bank per ColKinds)
)

// CmpOp mirrors query.CmpOp for the Aux field of comparisons.
const (
	cmpEq = iota
	cmpNe
	cmpLt
	cmpLe
	cmpGt
	cmpGe
)

// ColKind tags an emitted column's register bank.
type ColKind uint8

// Emitted column kinds.
const (
	ColVal ColKind = iota
	ColNode
	ColRel
)

// Pair is a (property key, value register) pair for update opcodes.
type Pair struct {
	Key string
	Val Reg
}

// Col is one emitted output column.
type Col struct {
	Kind ColKind
	Reg  Reg
}

// Instr is one IR instruction. The exported fields make the IR
// serializable for the persistent code cache.
type Instr struct {
	Op    Opcode
	Dst   Reg
	Dst2  Reg // secondary result (e.g. found-flag of OpGetNode)
	A, B  Reg
	Aux   int           // comparison op, object kind, etc.
	Val   storage.Value // constant immediate
	Sym   string        // label/key/param name
	Pairs []Pair        // update property assignments
	Cols  []Col         // emit columns
}

// TermKind classifies block terminators.
type TermKind uint8

// Terminators.
const (
	TermJump TermKind = iota
	TermBranch
	TermRet
)

// Block is an IR basic block: straight-line instructions plus one
// terminator.
type Block struct {
	Name   string
	Instrs []Instr
	Kind   TermKind
	Cond   Reg // for TermBranch (val reg holding a bool)
	To     int // target block index (TermJump, TermBranch true)
	Else   int // TermBranch false target
}

// Fn is an IR function: the fused query pipeline (§6.2 "transform the
// complete query pipeline into a single LLVM IR function").
type Fn struct {
	Name     string
	Blocks   []*Block // Blocks[0] is the entry
	NumVals  int
	NumNodes int
	NumRels  int
	NumIters int
	NumSlots int
	OutCols  []Col // layout of emitted tuples
}

// NumInstrs counts instructions across all blocks.
func (f *Fn) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// String renders the function in an LLVM-ish textual form, for debugging
// and golden tests of the passes.
func (f *Fn) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fn %s(vals=%d nodes=%d rels=%d iters=%d slots=%d) {\n",
		f.Name, f.NumVals, f.NumNodes, f.NumRels, f.NumIters, f.NumSlots)
	for i, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d: ; %s\n", i, blk.Name)
		for _, in := range blk.Instrs {
			b.WriteString("  ")
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
		switch blk.Kind {
		case TermJump:
			fmt.Fprintf(&b, "  jump b%d\n", blk.To)
		case TermBranch:
			fmt.Fprintf(&b, "  br v%d, b%d, b%d\n", blk.Cond, blk.To, blk.Else)
		case TermRet:
			b.WriteString("  ret\n")
		}
	}
	b.WriteString("}\n")
	return b.String()
}

var opNames = map[Opcode]string{
	OpNop: "nop", OpConst: "const", OpConstStr: "const.str", OpLoadParam: "param",
	OpLoadChunk: "loadchunk",
	OpAlloca:    "alloca", OpLoad: "load", OpStore: "store",
	OpAddI64: "add.i64", OpAnd: "and", OpOr: "or", OpNot: "not",
	OpCmpDyn: "cmp.dyn", OpCmpI64: "cmp.i64", OpCmpI64Guard: "cmp.i64g",
	OpCmpBool: "cmp.bool", OpCmpCode: "cmp.code",
	OpNodeIDVal: "node.id", OpRelIDVal: "rel.id",
	OpNodeProp: "node.prop", OpRelProp: "rel.prop",
	OpNodeLabelEq: "node.labeleq", OpRelLabelEq: "rel.labeleq",
	OpRelSrcID: "rel.src", OpRelDstID: "rel.dst", OpRelOtherID: "rel.other",
	OpGetNode:       "getnode",
	OpIterNodesInit: "iter.nodes", OpIterRelsInit: "iter.rels", OpIterChunkInit: "iter.chunk",
	OpIterRelChunkInit: "iter.relchunk",
	OpIterOutRels:      "iter.outrels", OpIterInRels: "iter.inrels",
	OpIterIndex: "iter.index", OpIterNext: "iter.next",
	OpIterNodeGet: "iter.nodeget", OpIterRelGet: "iter.relget",
	OpCreateNode: "create.node", OpCreateRel: "create.rel",
	OpSetProps: "setprops", OpDelete: "delete",
	OpEmit: "emit",
}

func (in Instr) String() string {
	name := opNames[in.Op]
	var b strings.Builder
	if in.Dst != NoReg && in.Op != OpStore {
		fmt.Fprintf(&b, "v%d = ", in.Dst)
	}
	b.WriteString(name)
	if in.A != NoReg {
		fmt.Fprintf(&b, " v%d", in.A)
	}
	if in.B != NoReg {
		fmt.Fprintf(&b, ", v%d", in.B)
	}
	if in.Op == OpStore {
		fmt.Fprintf(&b, " -> s%d", in.Dst)
	}
	if in.Sym != "" {
		fmt.Fprintf(&b, " %q", in.Sym)
	}
	if in.Op == OpConst {
		fmt.Fprintf(&b, " #%v/%d", in.Val.Type, in.Val.Raw)
	}
	if in.Op == OpCmpDyn || in.Op == OpCmpI64 || in.Op == OpCmpI64Guard || in.Op == OpCmpBool || in.Op == OpCmpCode {
		fmt.Fprintf(&b, " op=%d", in.Aux)
	}
	for _, c := range in.Cols {
		fmt.Fprintf(&b, " col(%d:v%d)", c.Kind, c.Reg)
	}
	return b.String()
}

// Verify checks structural invariants: terminator targets in range and
// register indices within the declared banks. It returns the first
// violation found.
func (f *Fn) Verify() error {
	for bi, blk := range f.Blocks {
		switch blk.Kind {
		case TermJump:
			if blk.To < 0 || blk.To >= len(f.Blocks) {
				return fmt.Errorf("jit: block b%d: jump target b%d out of range", bi, blk.To)
			}
		case TermBranch:
			if blk.To < 0 || blk.To >= len(f.Blocks) || blk.Else < 0 || blk.Else >= len(f.Blocks) {
				return fmt.Errorf("jit: block b%d: branch targets out of range", bi)
			}
			if blk.Cond < 0 || int(blk.Cond) >= f.NumVals {
				return fmt.Errorf("jit: block b%d: branch cond v%d out of range", bi, blk.Cond)
			}
		}
	}
	return nil
}
