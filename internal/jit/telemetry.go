package jit

import "poseidon/internal/telemetry"

// Telemetry holds the JIT engine's metric handles. The zero value (all
// nil) is the disabled state; every operation on a nil handle no-ops.
type Telemetry struct {
	// Compiles counts full compilations (codegen + pass cascade +
	// lowering), i.e. both cache tiers missed.
	Compiles *telemetry.Counter
	// CompileTime observes full-compilation wall time in nanoseconds.
	CompileTime *telemetry.Histogram
	// MemHits counts in-memory code-cache hits (already-linked code).
	MemHits *telemetry.Counter
	// PersistHits counts persistent code-cache hits (stored code relinked
	// from PMem — the paper's instant-restart path).
	PersistHits *telemetry.Counter
	// MorselsInterpreted / MorselsCompiled count morsels processed by each
	// path of the adaptive executor (§6.2).
	MorselsInterpreted *telemetry.Counter
	MorselsCompiled    *telemetry.Counter
	// Switchovers counts adaptive runs that actually flipped from the
	// interpreter to compiled code mid-query (both morsel kinds > 0).
	Switchovers *telemetry.Counter
}

// SetTelemetry installs the metric handles. Call before the engine
// serves queries; handles are read without synchronization.
func (j *Engine) SetTelemetry(t Telemetry) { j.tel = t }
