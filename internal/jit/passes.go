package jit

import (
	"fmt"

	"poseidon/internal/storage"
)

// The optimization pass cascade of §6.2. The paper applies
// PromoteMemoryToRegister, ControlFlowGraphSimplification, LoopUnrolling,
// DeadCodeElimination and InstructionCombining; this file implements the
// same cascade over our IR. Each pass reports what it changed so tests
// and the compiler's statistics can observe it.

// PassStat records the effect of one optimization pass.
type PassStat struct {
	Name    string
	Changed int
}

// Optimize runs the full pass cascade in the paper's order and returns
// per-pass statistics.
func Optimize(f *Fn) []PassStat {
	stats := []PassStat{
		{Name: "mem2reg", Changed: promoteMemToReg(f)},
		{Name: "simplifycfg", Changed: simplifyCFG(f)},
		{Name: "loop-unroll", Changed: unrollLoops(f)},
		{Name: "dce", Changed: deadCodeElim(f)},
		{Name: "instcombine", Changed: instCombine(f)},
	}
	// Cleanup after combining: combined instructions may leave dead code
	// and trivial control flow behind (LLVM pipelines iterate similarly).
	stats = append(stats,
		PassStat{Name: "dce", Changed: deadCodeElim(f)},
		PassStat{Name: "simplifycfg", Changed: simplifyCFG(f)},
	)
	return stats
}

// --- PromoteMemoryToRegister ---

// promoteMemToReg forwards loads from stack slots to the most recent
// store within the same basic block and removes allocas that end up with
// no remaining loads outside such patterns. Slots whose value crosses
// block boundaries (e.g. the Limit counter) stay in memory — the same
// restriction LLVM's mem2reg lifts only with phi insertion.
func promoteMemToReg(f *Fn) int {
	changed := 0
	// In-block store→load forwarding.
	for _, blk := range f.Blocks {
		last := map[Reg]Reg{} // slot -> value reg of latest store
		repl := map[Reg]Reg{} // load dst -> forwarded value reg
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			rewriteOperands(in, repl)
			switch in.Op {
			case OpStore:
				last[in.Dst] = in.A
			case OpLoad:
				if v, ok := last[in.A]; ok {
					repl[in.Dst] = v
					in.Op = OpNop
					changed++
				}
			}
		}
		if len(repl) > 0 {
			rewriteTerm(blk, repl)
		}
	}
	// Drop allocas/stores for slots that no longer have any loads.
	loads := map[Reg]int{}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == OpLoad {
				loads[in.A]++
			}
		}
	}
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if (in.Op == OpAlloca || in.Op == OpStore) && loads[in.Dst] == 0 {
				in.Op = OpNop
				changed++
			}
		}
	}
	compactNops(f)
	return changed
}

// rewriteOperands substitutes value-register operands through repl.
func rewriteOperands(in *Instr, repl map[Reg]Reg) {
	if len(repl) == 0 {
		return
	}
	sub := func(r Reg) Reg {
		if n, ok := repl[r]; ok {
			return n
		}
		return r
	}
	// Only value-bank operands participate; object operands are keyed by
	// opcode and never alias slots or loads.
	switch in.Op {
	case OpStore:
		in.A = sub(in.A)
	case OpAddI64, OpAnd, OpOr, OpCmpDyn, OpCmpI64, OpCmpI64Guard, OpCmpBool, OpCmpCode:
		in.A, in.B = sub(in.A), sub(in.B)
	case OpNot, OpGetNode, OpIterChunkInit, OpIterRelChunkInit, OpIterIndex:
		in.A = sub(in.A)
	case OpEmit:
		for i, c := range in.Cols {
			if c.Kind == ColVal {
				in.Cols[i].Reg = sub(c.Reg)
			}
		}
	}
	for i := range in.Pairs {
		in.Pairs[i].Val = sub(in.Pairs[i].Val)
	}
}

func rewriteTerm(blk *Block, repl map[Reg]Reg) {
	if blk.Kind == TermBranch {
		if n, ok := repl[blk.Cond]; ok {
			blk.Cond = n
		}
	}
}

func compactNops(f *Fn) {
	for _, blk := range f.Blocks {
		kept := blk.Instrs[:0]
		for _, in := range blk.Instrs {
			if in.Op != OpNop {
				kept = append(kept, in)
			}
		}
		blk.Instrs = kept
	}
}

// --- ControlFlowGraphSimplification ---

// simplifyCFG threads jumps through empty blocks, merges single-successor
// / single-predecessor block pairs, and removes unreachable blocks. This
// is the pass with the largest effect on our backend, which dispatches
// once per executed block.
func simplifyCFG(f *Fn) int {
	changed := 0
	for {
		n := threadEmptyJumps(f)
		n += mergeLinearBlocks(f)
		n += removeUnreachable(f)
		if n == 0 {
			return changed
		}
		changed += n
	}
}

func threadEmptyJumps(f *Fn) int {
	// target(i) follows chains of empty jump-only blocks.
	final := make([]int, len(f.Blocks))
	for i, blk := range f.Blocks {
		final[i] = i
		if len(blk.Instrs) == 0 && blk.Kind == TermJump {
			final[i] = blk.To
		}
	}
	resolve := func(i int) int {
		seen := map[int]bool{}
		for final[i] != i && !seen[i] {
			seen[i] = true
			i = final[i]
		}
		return i
	}
	changed := 0
	for _, blk := range f.Blocks {
		switch blk.Kind {
		case TermJump:
			if t := resolve(blk.To); t != blk.To {
				blk.To = t
				changed++
			}
		case TermBranch:
			if t := resolve(blk.To); t != blk.To {
				blk.To = t
				changed++
			}
			if t := resolve(blk.Else); t != blk.Else {
				blk.Else = t
				changed++
			}
		}
	}
	return changed
}

func mergeLinearBlocks(f *Fn) int {
	preds := predCounts(f)
	changed := 0
	for i, blk := range f.Blocks {
		if blk.Kind != TermJump {
			continue
		}
		succ := blk.To
		if succ == i || succ == 0 {
			continue // self-loop or entry
		}
		if preds[succ] != 1 {
			continue
		}
		s := f.Blocks[succ]
		blk.Instrs = append(blk.Instrs, s.Instrs...)
		blk.Kind, blk.Cond, blk.To, blk.Else = s.Kind, s.Cond, s.To, s.Else
		s.Instrs = nil
		s.Kind = TermRet // now unreachable; removed below
		changed++
		preds = predCounts(f)
	}
	return changed
}

func predCounts(f *Fn) []int {
	preds := make([]int, len(f.Blocks))
	for _, blk := range f.Blocks {
		switch blk.Kind {
		case TermJump:
			preds[blk.To]++
		case TermBranch:
			preds[blk.To]++
			preds[blk.Else]++
		}
	}
	return preds
}

func removeUnreachable(f *Fn) int {
	reach := make([]bool, len(f.Blocks))
	var visit func(int)
	visit = func(i int) {
		if reach[i] {
			return
		}
		reach[i] = true
		blk := f.Blocks[i]
		switch blk.Kind {
		case TermJump:
			visit(blk.To)
		case TermBranch:
			visit(blk.To)
			visit(blk.Else)
		}
	}
	visit(0)
	removedInstrs := 0
	remap := make([]int, len(f.Blocks))
	var kept []*Block
	for i, blk := range f.Blocks {
		if reach[i] {
			remap[i] = len(kept)
			kept = append(kept, blk)
		} else {
			removedInstrs += len(blk.Instrs) + 1
		}
	}
	if len(kept) == len(f.Blocks) {
		return 0
	}
	for _, blk := range kept {
		switch blk.Kind {
		case TermJump:
			blk.To = remap[blk.To]
		case TermBranch:
			blk.To = remap[blk.To]
			blk.Else = remap[blk.Else]
		}
	}
	f.Blocks = kept
	return removedInstrs
}

// --- LoopUnrolling ---

// unrollLoops unrolls single-block self-loop bodies by a factor of two:
// the body is duplicated behind a second loop-condition check, halving
// the per-iteration block dispatch overhead. Only loops whose header
// condition is a plain iterator advance are transformed (the common scan
// shape after simplifyCFG).
func unrollLoops(f *Fn) int {
	changed := 0
	for hi, header := range f.Blocks {
		if header.Kind != TermBranch || len(header.Instrs) == 0 {
			continue
		}
		// Header must end with: cond = iter.next; br cond, body, exit.
		last := header.Instrs[len(header.Instrs)-1]
		if last.Op != OpIterNext || last.Dst != header.Cond {
			continue
		}
		bodyIdx := header.To
		if bodyIdx == hi {
			continue
		}
		body := f.Blocks[bodyIdx]
		if body.Kind != TermJump || body.To != hi {
			continue // body must jump straight back to the header
		}
		if emitsOrBranches(body) {
			continue // bodies that can early-return keep their shape
		}
		// body': original instrs; cond2 = iter.next; br cond2, body2, exit
		// body2: copy of instrs (fresh dst registers); jump header.
		body2 := &Block{Name: body.Name + ".unrolled", Kind: TermJump, To: hi}
		remap := map[Reg]Reg{}
		for _, in := range body.Instrs {
			dup := in
			dup.Pairs = append([]Pair(nil), in.Pairs...)
			dup.Cols = append([]Col(nil), in.Cols...)
			rewriteOperands(&dup, remap)
			if dup.Dst != NoReg && dup.Op != OpStore {
				fresh := renameDst(f, dup.Op)
				remap[dup.Dst] = fresh
				dup.Dst = fresh
			}
			body2.Instrs = append(body2.Instrs, dup)
		}
		cond2 := Reg(f.NumVals)
		f.NumVals++
		body.Instrs = append(body.Instrs, Instr{Op: OpIterNext, Dst: cond2, A: last.A, B: NoReg})
		f.Blocks = append(f.Blocks, body2)
		body.Kind, body.Cond, body.To, body.Else = TermBranch, cond2, len(f.Blocks)-1, header.Else
		changed++
	}
	return changed
}

// emitsOrBranches reports whether the block contains instructions whose
// duplication would change semantics under early exits.
func emitsOrBranches(b *Block) bool {
	for _, in := range b.Instrs {
		switch in.Op {
		case OpEmit, OpCreateNode, OpCreateRel, OpSetProps, OpDelete, OpGetNode:
			return true
		}
	}
	return false
}

// renameDst allocates a fresh destination register in the opcode's bank.
func renameDst(f *Fn, op Opcode) Reg {
	switch op {
	case OpIterNodeGet, OpGetNode, OpCreateNode:
		r := Reg(f.NumNodes)
		f.NumNodes++
		return r
	case OpIterRelGet, OpCreateRel:
		r := Reg(f.NumRels)
		f.NumRels++
		return r
	case OpIterNodesInit, OpIterRelsInit, OpIterChunkInit, OpIterRelChunkInit,
		OpIterOutRels, OpIterInRels, OpIterIndex:
		r := Reg(f.NumIters)
		f.NumIters++
		return r
	case OpAlloca:
		r := Reg(f.NumSlots)
		f.NumSlots++
		return r
	default:
		r := Reg(f.NumVals)
		f.NumVals++
		return r
	}
}

// --- DeadCodeElimination ---

// pure reports whether the instruction has no side effects and can be
// removed when its results are unused.
func pure(op Opcode) bool {
	switch op {
	case OpConst, OpConstStr, OpLoadParam, OpLoadChunk, OpLoad,
		OpAddI64, OpAnd, OpOr, OpNot,
		OpCmpDyn, OpCmpI64, OpCmpI64Guard, OpCmpBool, OpCmpCode,
		OpNodeIDVal, OpRelIDVal, OpNodeProp, OpRelProp,
		OpNodeLabelEq, OpRelLabelEq, OpRelSrcID, OpRelDstID, OpRelOtherID:
		return true
	default:
		return false
	}
}

// deadCodeElim removes pure instructions whose value-bank destination is
// never used (the IR equivalent of unreachable-code elimination plus
// trivially-dead instruction removal).
func deadCodeElim(f *Fn) int {
	used := map[Reg]bool{}
	note := func(r Reg) {
		if r != NoReg {
			used[r] = true
		}
	}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case OpStore:
				note(in.A)
			case OpEmit:
				for _, c := range in.Cols {
					if c.Kind == ColVal {
						note(c.Reg)
					}
				}
			default:
				note(in.A)
				note(in.B)
			}
			for _, p := range in.Pairs {
				note(p.Val)
			}
		}
		if blk.Kind == TermBranch {
			note(blk.Cond)
		}
	}
	// Note: object-bank operands share the used-set with value registers;
	// since banks never mix within one opcode's operand positions, a
	// spurious keep is possible but a spurious remove is not.
	changed := 0
	for _, blk := range f.Blocks {
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			if pure(in.Op) && in.Dst != NoReg && !used[in.Dst] {
				in.Op = OpNop
				changed++
			}
		}
	}
	compactNops(f)
	return changed
}

// --- InstructionCombining ---

// instCombine folds constant expressions, simplifies boolean identities
// and specializes dynamic comparisons whose operand types are known
// (§6.2: code can be generated for individual types).
func instCombine(f *Fn) int {
	consts := map[Reg]storage.Value{}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == OpConst {
				consts[in.Dst] = in.Val
			}
		}
	}
	changed := 0
	for _, blk := range f.Blocks {
		repl := map[Reg]Reg{}
		for i := range blk.Instrs {
			in := &blk.Instrs[i]
			rewriteOperands(in, repl)
			switch in.Op {
			case OpCmpDyn:
				av, aok := consts[in.A]
				bv, bok := consts[in.B]
				switch {
				case aok && bok && av.Type == bv.Type:
					// Full constant fold.
					if v, ok := foldCmp(in.Aux, av, bv); ok {
						*in = Instr{Op: OpConst, Dst: in.Dst, A: NoReg, B: NoReg, Val: v}
						consts[in.Dst] = v
						changed++
					}
				case aok && av.Type == storage.TypeInt, bok && bv.Type == storage.TypeInt:
					// One constant int side: specialize optimistically; the
					// specialized opcode still type-checks at run time.
					in.Op = OpCmpI64Guard
					changed++
				}
			case OpAnd:
				if v, ok := consts[in.A]; ok && v.Type == storage.TypeBool {
					changed++
					if v.Bool() {
						repl[in.Dst] = in.B // true && x == x
						in.Op = OpNop
					} else {
						*in = Instr{Op: OpConst, Dst: in.Dst, A: NoReg, B: NoReg, Val: storage.BoolValue(false)}
						consts[in.Dst] = storage.BoolValue(false)
					}
				} else if v, ok := consts[in.B]; ok && v.Type == storage.TypeBool {
					changed++
					if v.Bool() {
						repl[in.Dst] = in.A
						in.Op = OpNop
					} else {
						*in = Instr{Op: OpConst, Dst: in.Dst, A: NoReg, B: NoReg, Val: storage.BoolValue(false)}
						consts[in.Dst] = storage.BoolValue(false)
					}
				}
			case OpOr:
				if v, ok := consts[in.A]; ok && v.Type == storage.TypeBool {
					changed++
					if !v.Bool() {
						repl[in.Dst] = in.B // false || x == x
						in.Op = OpNop
					} else {
						*in = Instr{Op: OpConst, Dst: in.Dst, A: NoReg, B: NoReg, Val: storage.BoolValue(true)}
						consts[in.Dst] = storage.BoolValue(true)
					}
				}
			case OpNot:
				if v, ok := consts[in.A]; ok && v.Type == storage.TypeBool {
					*in = Instr{Op: OpConst, Dst: in.Dst, A: NoReg, B: NoReg, Val: storage.BoolValue(!v.Bool())}
					consts[in.Dst] = storage.BoolValue(!v.Bool())
					changed++
				}
			case OpAddI64:
				av, aok := consts[in.A]
				bv, bok := consts[in.B]
				if aok && bok {
					v := storage.IntValue(av.Int() + bv.Int())
					*in = Instr{Op: OpConst, Dst: in.Dst, A: NoReg, B: NoReg, Val: v}
					consts[in.Dst] = v
					changed++
				}
			}
		}
		if len(repl) > 0 {
			rewriteTerm(blk, repl)
			// Later blocks may also use replaced registers.
			for _, other := range f.Blocks {
				for j := range other.Instrs {
					rewriteOperands(&other.Instrs[j], repl)
				}
				rewriteTerm(other, repl)
			}
		}
	}
	compactNops(f)
	return changed
}

func foldCmp(aux int, a, b storage.Value) (storage.Value, bool) {
	var c int
	switch a.Type {
	case storage.TypeInt:
		switch {
		case a.Int() < b.Int():
			c = -1
		case a.Int() > b.Int():
			c = 1
		}
	case storage.TypeFloat:
		switch {
		case a.Float() < b.Float():
			c = -1
		case a.Float() > b.Float():
			c = 1
		}
	case storage.TypeBool:
		switch {
		case !a.Bool() && b.Bool():
			c = -1
		case a.Bool() && !b.Bool():
			c = 1
		}
	default:
		return storage.Value{}, false
	}
	var r bool
	switch aux {
	case cmpEq:
		r = c == 0
	case cmpNe:
		r = c != 0
	case cmpLt:
		r = c < 0
	case cmpLe:
		r = c <= 0
	case cmpGt:
		r = c > 0
	case cmpGe:
		r = c >= 0
	default:
		return storage.Value{}, false
	}
	return storage.BoolValue(r), true
}

// DumpStats renders pass statistics for logs.
func DumpStats(stats []PassStat) string {
	s := ""
	for _, st := range stats {
		s += fmt.Sprintf("%s:%d ", st.Name, st.Changed)
	}
	return s
}
