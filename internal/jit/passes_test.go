package jit

import (
	"strings"
	"testing"

	"poseidon/internal/query"
	"poseidon/internal/storage"
)

func iv(v int64) storage.Value { return storage.IntValue(v) }
func bv(v bool) storage.Value  { return storage.BoolValue(v) }

// fnOf builds a function from blocks for pass tests.
func fnOf(numVals int, blocks ...*Block) *Fn {
	return &Fn{Name: "t", Blocks: blocks, NumVals: numVals, NumSlots: 4}
}

func TestMem2RegForwardsStoreToLoad(t *testing.T) {
	f := fnOf(4, &Block{
		Name: "b",
		Instrs: []Instr{
			{Op: OpAlloca, Dst: 0, A: NoReg, B: NoReg, Val: iv(0)},
			{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, Val: iv(7)},
			{Op: OpStore, Dst: 0, A: 0, B: NoReg},
			{Op: OpLoad, Dst: 1, A: 0, B: NoReg},
			{Op: OpAddI64, Dst: 2, A: 1, B: 1},
			{Op: OpEmit, Dst: 3, A: NoReg, B: NoReg, Cols: []Col{{Kind: ColVal, Reg: 2}}},
		},
		Kind: TermRet,
	})
	n := promoteMemToReg(f)
	if n == 0 {
		t.Fatal("mem2reg reported no changes")
	}
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == OpLoad || in.Op == OpAlloca || in.Op == OpStore {
			t.Errorf("memory op %v survived promotion", in)
		}
		if in.Op == OpAddI64 && (in.A != 0 || in.B != 0) {
			t.Errorf("add operands not forwarded: %v", in)
		}
	}
}

func TestMem2RegKeepsCrossBlockSlots(t *testing.T) {
	// Slot stored in block 0, loaded in block 1: must stay in memory.
	f := fnOf(4,
		&Block{Name: "a", Instrs: []Instr{
			{Op: OpAlloca, Dst: 0, A: NoReg, B: NoReg, Val: iv(0)},
			{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, Val: iv(7)},
			{Op: OpStore, Dst: 0, A: 0, B: NoReg},
		}, Kind: TermJump, To: 1},
		&Block{Name: "b", Instrs: []Instr{
			{Op: OpLoad, Dst: 1, A: 0, B: NoReg},
			{Op: OpEmit, Dst: 2, A: NoReg, B: NoReg, Cols: []Col{{Kind: ColVal, Reg: 1}}},
		}, Kind: TermRet},
	)
	promoteMemToReg(f)
	found := false
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == OpLoad {
				found = true
			}
		}
	}
	if !found {
		t.Error("cross-block load was incorrectly promoted")
	}
}

func TestSimplifyCFGThreadsAndMerges(t *testing.T) {
	// b0 -> b1(empty) -> b2; b2 single-pred merge candidate.
	f := fnOf(2,
		&Block{Name: "b0", Instrs: []Instr{{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, Val: iv(1)}}, Kind: TermJump, To: 1},
		&Block{Name: "b1", Kind: TermJump, To: 2},
		&Block{Name: "b2", Instrs: []Instr{{Op: OpEmit, Dst: 1, A: NoReg, B: NoReg, Cols: nil}}, Kind: TermRet},
	)
	n := simplifyCFG(f)
	if n == 0 {
		t.Fatal("simplifycfg reported no changes")
	}
	if len(f.Blocks) != 1 {
		t.Errorf("blocks after simplify = %d, want 1 (all merged)", len(f.Blocks))
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSimplifyCFGRemovesUnreachable(t *testing.T) {
	f := fnOf(2,
		&Block{Name: "b0", Kind: TermRet},
		&Block{Name: "dead", Instrs: []Instr{{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, Val: iv(1)}}, Kind: TermRet},
	)
	simplifyCFG(f)
	if len(f.Blocks) != 1 {
		t.Errorf("unreachable block survived: %d blocks", len(f.Blocks))
	}
}

func TestDCERemovesUnusedPureOps(t *testing.T) {
	f := fnOf(4, &Block{
		Name: "b",
		Instrs: []Instr{
			{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, Val: iv(1)},
			{Op: OpConst, Dst: 1, A: NoReg, B: NoReg, Val: iv(2)}, // dead
			{Op: OpEmit, Dst: 2, A: NoReg, B: NoReg, Cols: []Col{{Kind: ColVal, Reg: 0}}},
		},
		Kind: TermRet,
	})
	n := deadCodeElim(f)
	if n != 1 {
		t.Errorf("dce removed %d instrs, want 1", n)
	}
	if len(f.Blocks[0].Instrs) != 2 {
		t.Errorf("instrs after dce = %d, want 2", len(f.Blocks[0].Instrs))
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	f := fnOf(4, &Block{
		Name: "b",
		Instrs: []Instr{
			{Op: OpIterNodesInit, Dst: 0, A: NoReg, B: NoReg},
			{Op: OpIterNext, Dst: 0, A: 0, B: NoReg}, // dst unused but impure
		},
		Kind: TermRet,
	})
	if n := deadCodeElim(f); n != 0 {
		t.Errorf("dce removed %d impure instrs", n)
	}
}

func TestInstCombineFoldsConstants(t *testing.T) {
	f := fnOf(6, &Block{
		Name: "b",
		Instrs: []Instr{
			{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, Val: iv(3)},
			{Op: OpConst, Dst: 1, A: NoReg, B: NoReg, Val: iv(5)},
			{Op: OpCmpDyn, Dst: 2, A: 0, B: 1, Aux: cmpLt}, // fold -> true
			{Op: OpAddI64, Dst: 3, A: 0, B: 1},             // fold -> 8
			{Op: OpNot, Dst: 4, A: 2, B: NoReg},            // fold -> false
			{Op: OpEmit, Dst: 5, A: NoReg, B: NoReg, Cols: []Col{{Kind: ColVal, Reg: 3}, {Kind: ColVal, Reg: 4}}},
		},
		Kind: TermRet,
	})
	n := instCombine(f)
	if n < 3 {
		t.Fatalf("instcombine changed %d, want >= 3", n)
	}
	for _, in := range f.Blocks[0].Instrs {
		switch in.Dst {
		case 2:
			if in.Op != OpConst || !in.Val.Bool() {
				t.Errorf("cmp not folded: %v", in)
			}
		case 3:
			if in.Op != OpConst || in.Val.Int() != 8 {
				t.Errorf("add not folded: %v", in)
			}
		case 4:
			if in.Op != OpConst || in.Val.Bool() {
				t.Errorf("not not folded: %v", in)
			}
		}
	}
}

func TestInstCombineBoolIdentities(t *testing.T) {
	f := fnOf(6, &Block{
		Name: "b",
		Instrs: []Instr{
			{Op: OpConst, Dst: 0, A: NoReg, B: NoReg, Val: bv(true)},
			{Op: OpNodeLabelEq, Dst: 1, A: 0, B: NoReg, Sym: "X"}, // dynamic bool
			{Op: OpAnd, Dst: 2, A: 0, B: 1},                       // true && x -> x
			{Op: OpEmit, Dst: 3, A: NoReg, B: NoReg, Cols: []Col{{Kind: ColVal, Reg: 2}}},
		},
		Kind: TermRet,
	})
	instCombine(f)
	// The emit column must now reference register 1 directly.
	var emit *Instr
	for i := range f.Blocks[0].Instrs {
		if f.Blocks[0].Instrs[i].Op == OpEmit {
			emit = &f.Blocks[0].Instrs[i]
		}
	}
	if emit == nil || emit.Cols[0].Reg != 1 {
		t.Errorf("and-identity not propagated: %+v", emit)
	}
}

func TestUnrollDuplicatesSimpleLoopBody(t *testing.T) {
	// header: c = iter.next; br c, body, exit
	// body:   x = node.id; jump header   (no emit -> unrollable)
	f := &Fn{
		Name: "t", NumVals: 4, NumNodes: 2, NumIters: 1,
		Blocks: []*Block{
			{Name: "entry", Instrs: []Instr{{Op: OpIterNodesInit, Dst: 0, A: NoReg, B: NoReg}}, Kind: TermJump, To: 1},
			{Name: "header", Instrs: []Instr{{Op: OpIterNext, Dst: 0, A: 0, B: NoReg}}, Kind: TermBranch, Cond: 0, To: 2, Else: 3},
			{Name: "body", Instrs: []Instr{{Op: OpIterNodeGet, Dst: 0, A: 0, B: NoReg}}, Kind: TermJump, To: 1},
			{Name: "exit", Kind: TermRet},
		},
	}
	n := unrollLoops(f)
	if n != 1 {
		t.Fatalf("unrolled %d loops, want 1", n)
	}
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	// The body must now branch to a duplicated block.
	body := f.Blocks[2]
	if body.Kind != TermBranch {
		t.Fatalf("body terminator = %v, want branch", body.Kind)
	}
	dup := f.Blocks[body.To]
	if !strings.Contains(dup.Name, "unrolled") {
		t.Errorf("branch target %q is not the unrolled copy", dup.Name)
	}
	if len(dup.Instrs) != len([]Instr{{Op: OpIterNodeGet}}) {
		t.Errorf("unrolled body has %d instrs", len(dup.Instrs))
	}
}

func TestUnrollSkipsEmittingBodies(t *testing.T) {
	f := &Fn{
		Name: "t", NumVals: 4, NumNodes: 2, NumIters: 1,
		Blocks: []*Block{
			{Name: "entry", Instrs: []Instr{{Op: OpIterNodesInit, Dst: 0, A: NoReg, B: NoReg}}, Kind: TermJump, To: 1},
			{Name: "header", Instrs: []Instr{{Op: OpIterNext, Dst: 0, A: 0, B: NoReg}}, Kind: TermBranch, Cond: 0, To: 2, Else: 3},
			{Name: "body", Instrs: []Instr{
				{Op: OpIterNodeGet, Dst: 0, A: 0, B: NoReg},
				{Op: OpEmit, Dst: 1, A: NoReg, B: NoReg, Cols: []Col{{Kind: ColNode, Reg: 0}}},
			}, Kind: TermJump, To: 1},
			{Name: "exit", Kind: TermRet},
		},
	}
	if n := unrollLoops(f); n != 0 {
		t.Errorf("unrolled %d emitting loops, want 0", n)
	}
}

func TestOptimizeShrinksGeneratedCode(t *testing.T) {
	plan := plansUnderTest()["two-hop"]
	mp, ok := query.SplitPipeline(plan)
	if !ok {
		t.Fatal("split failed")
	}
	fn, err := Compile(mp, false)
	if err != nil {
		t.Fatal(err)
	}
	blocksBefore := len(fn.Blocks)
	stats := Optimize(fn)
	if err := fn.Verify(); err != nil {
		t.Fatalf("optimized function invalid: %v\n%s", err, fn)
	}
	if len(fn.Blocks) >= blocksBefore {
		t.Errorf("simplifycfg did not reduce blocks: %d -> %d", blocksBefore, len(fn.Blocks))
	}
	total := 0
	for _, s := range stats {
		total += s.Changed
	}
	if total == 0 {
		t.Error("pass cascade changed nothing on a real pipeline")
	}
	if s := DumpStats(stats); !strings.Contains(s, "simplifycfg") {
		t.Errorf("DumpStats output missing pass names: %q", s)
	}
}

func TestIRStringAndVerify(t *testing.T) {
	plan := plansUnderTest()["filter-project"]
	mp, _ := query.SplitPipeline(plan)
	fn, err := Compile(mp, false)
	if err != nil {
		t.Fatal(err)
	}
	text := fn.String()
	for _, want := range []string{"iter.nodes", "node.prop", "emit", "br ", "jump "} {
		if !strings.Contains(text, want) {
			t.Errorf("IR dump missing %q:\n%s", want, text)
		}
	}
	if err := fn.Verify(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a terminator: Verify must catch it.
	fn.Blocks[0].Kind = TermJump
	fn.Blocks[0].To = 999
	if err := fn.Verify(); err == nil {
		t.Error("Verify accepted an out-of-range jump")
	}
}

func TestMorselVariantUsesChunkLeaf(t *testing.T) {
	plan := &query.Plan{Root: &query.NodeScan{Label: "Person"}}
	mp, _ := query.SplitPipeline(plan)
	full, _ := Compile(mp, false)
	morsel, _ := Compile(mp, true)
	if !strings.Contains(morsel.String(), "loadchunk") {
		t.Error("morsel variant lacks loadchunk")
	}
	if strings.Contains(full.String(), "loadchunk") {
		t.Error("full variant unexpectedly chunk-driven")
	}
}
