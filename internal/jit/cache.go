package jit

import (
	"fmt"
	"hash/fnv"
	"sync"

	"poseidon/internal/core"
	"poseidon/internal/pmemobj"
	"poseidon/internal/storage"
)

// Persistent compiled-code cache (§6.2 "JIT Compilation"): optimized IR
// is serialized and stored in PMem in a hash map keyed by the query
// identifier, so subsequent runs of a query — even after a restart — skip
// code generation and optimization and only pay the (cheap) linking step.
// This is the analogue of the paper persisting the JIT's binary object
// files.

const (
	pcEntries   = 128
	pcHdrSize   = 64
	pcEntrySize = 32 // hash u64, blobOff u64, blobLen u64, reserved u64
)

type pcache struct {
	mu   sync.Mutex
	pool *pmemobj.Pool
	hdr  uint64 // header block: [count u64][pad][entries]
}

// openCache attaches to (or creates) the engine's persistent code cache,
// anchored at the engine's auxiliary root.
func openCache(e *core.Engine) (*pcache, error) {
	pool := e.Pool()
	if off := e.AuxRoot(); off != 0 {
		return &pcache{pool: pool, hdr: off}, nil
	}
	off, err := pool.Alloc(pcHdrSize + pcEntries*pcEntrySize)
	if err != nil {
		return nil, fmt.Errorf("jit: allocate code cache: %w", err)
	}
	pool.Device().Persist(off, pcHdrSize+pcEntries*pcEntrySize)
	e.SetAuxRoot(off)
	return &pcache{pool: pool, hdr: off}, nil
}

func sigHash(sig string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(sig))
	v := h.Sum64()
	if v == 0 {
		v = 1
	}
	return v
}

func (c *pcache) entryOff(i int) uint64 {
	return c.hdr + pcHdrSize + uint64(i)*pcEntrySize
}

// lookup returns the serialized code blob for sig, if present.
func (c *pcache) lookup(sig string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dev := c.pool.Device()
	h := sigHash(sig)
	n := int(dev.ReadU64(c.hdr))
	if n > pcEntries {
		n = pcEntries
	}
	for i := 0; i < n; i++ {
		ent := c.entryOff(i)
		if dev.ReadU64(ent) != h {
			continue
		}
		blobOff := dev.ReadU64(ent + 8)
		blobLen := dev.ReadU64(ent + 16)
		blob := make([]byte, blobLen)
		dev.ReadBytes(blobOff, blob)
		// The blob embeds the full signature to disambiguate hash
		// collisions.
		storedSig, body, ok := splitBlob(blob)
		if !ok || storedSig != sig {
			continue
		}
		return body, true
	}
	return nil, false
}

// store persists a code blob under sig. A full cache silently skips
// persistence (the in-memory cache still serves the session).
func (c *pcache) store(sig string, body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dev := c.pool.Device()
	n := int(dev.ReadU64(c.hdr))
	if n >= pcEntries {
		return nil
	}
	blob := joinBlob(sig, body)
	off, err := c.pool.Alloc(uint64(len(blob)))
	if err != nil {
		return err
	}
	//poseidonlint:ignore torn-store the blob is unreachable until the 8-byte entry-count bump persists below; a torn blob after crash is garbage-but-invisible
	dev.WriteBytes(off, blob)
	dev.Flush(off, uint64(len(blob)))
	ent := c.entryOff(n)
	dev.WriteU64(ent+8, off)
	dev.WriteU64(ent+16, uint64(len(blob)))
	dev.WriteU64(ent, sigHash(sig))
	dev.Flush(ent, pcEntrySize)
	dev.Drain()
	// The entry becomes visible only once the count is bumped durably
	// (8-byte failure-atomic commit point).
	dev.WriteU64(c.hdr, uint64(n+1))
	dev.Persist(c.hdr, 8)
	return nil
}

func joinBlob(sig string, body []byte) []byte {
	out := make([]byte, 8+len(sig)+len(body))
	for i := 0; i < 8; i++ {
		out[i] = byte(len(sig) >> (8 * i))
	}
	copy(out[8:], sig)
	copy(out[8+len(sig):], body)
	return out
}

func splitBlob(blob []byte) (string, []byte, bool) {
	if len(blob) < 8 {
		return "", nil, false
	}
	n := 0
	for i := 7; i >= 0; i-- {
		n = n<<8 | int(blob[i])
	}
	if n < 0 || 8+n > len(blob) {
		return "", nil, false
	}
	return string(blob[8 : 8+n]), blob[8+n:], true
}

// codeBundle is the serialized form of a compilation: both pipeline
// variants (full scan and morsel-driven). A compact custom codec keeps
// relinking far cheaper than recompiling — the property that makes the
// persistent code cache worthwhile (§6.2).
type codeBundle struct {
	Full   *Fn
	Morsel *Fn
}

func encodeBundle(b *codeBundle) ([]byte, error) {
	var w irWriter
	w.fn(b.Full)
	w.fn(b.Morsel)
	return w.buf, nil
}

func decodeBundle(data []byte) (*codeBundle, error) {
	r := irReader{buf: data}
	full := r.fn()
	morsel := r.fn()
	if r.err != nil {
		return nil, fmt.Errorf("jit: decode code bundle: %w", r.err)
	}
	return &codeBundle{Full: full, Morsel: morsel}, nil
}

// --- compact IR codec (varint-based) ---

type irWriter struct{ buf []byte }

func (w *irWriter) u64(v uint64) {
	for v >= 0x80 {
		w.buf = append(w.buf, byte(v)|0x80)
		v >>= 7
	}
	w.buf = append(w.buf, byte(v))
}

func (w *irWriter) i64(v int64) { w.u64(uint64(v)<<1 ^ uint64(v>>63)) }

func (w *irWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *irWriter) reg(r Reg) { w.i64(int64(r)) }

func (w *irWriter) fn(f *Fn) {
	w.str(f.Name)
	w.u64(uint64(f.NumVals))
	w.u64(uint64(f.NumNodes))
	w.u64(uint64(f.NumRels))
	w.u64(uint64(f.NumIters))
	w.u64(uint64(f.NumSlots))
	w.u64(uint64(len(f.OutCols)))
	for _, c := range f.OutCols {
		w.u64(uint64(c.Kind))
		w.reg(c.Reg)
	}
	w.u64(uint64(len(f.Blocks)))
	for _, blk := range f.Blocks {
		w.str(blk.Name)
		w.u64(uint64(blk.Kind))
		w.reg(blk.Cond)
		w.i64(int64(blk.To))
		w.i64(int64(blk.Else))
		w.u64(uint64(len(blk.Instrs)))
		for _, in := range blk.Instrs {
			w.u64(uint64(in.Op))
			w.reg(in.Dst)
			w.reg(in.Dst2)
			w.reg(in.A)
			w.reg(in.B)
			w.i64(int64(in.Aux))
			w.u64(uint64(in.Val.Type))
			w.u64(in.Val.Raw)
			w.str(in.Sym)
			w.u64(uint64(len(in.Pairs)))
			for _, p := range in.Pairs {
				w.str(p.Key)
				w.reg(p.Val)
			}
			w.u64(uint64(len(in.Cols)))
			for _, c := range in.Cols {
				w.u64(uint64(c.Kind))
				w.reg(c.Reg)
			}
		}
	}
}

type irReader struct {
	buf []byte
	pos int
	err error
}

func (r *irReader) u64() uint64 {
	var v uint64
	var shift uint
	for {
		if r.pos >= len(r.buf) {
			r.err = fmt.Errorf("truncated IR blob")
			return 0
		}
		b := r.buf[r.pos]
		r.pos++
		v |= uint64(b&0x7F) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			r.err = fmt.Errorf("varint overflow")
			return 0
		}
	}
}

func (r *irReader) i64() int64 {
	v := r.u64()
	return int64(v>>1) ^ -int64(v&1)
}

func (r *irReader) str() string {
	n := int(r.u64())
	if r.err != nil || r.pos+n > len(r.buf) || n < 0 {
		r.err = fmt.Errorf("truncated string in IR blob")
		return ""
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *irReader) reg() Reg { return Reg(r.i64()) }

func (r *irReader) fn() *Fn {
	f := &Fn{Name: r.str()}
	f.NumVals = int(r.u64())
	f.NumNodes = int(r.u64())
	f.NumRels = int(r.u64())
	f.NumIters = int(r.u64())
	f.NumSlots = int(r.u64())
	nOut := int(r.u64())
	if r.err != nil || nOut > 1<<16 {
		r.err = fmt.Errorf("corrupt IR blob header")
		return f
	}
	if nOut > 0 {
		f.OutCols = make([]Col, nOut)
	}
	for i := range f.OutCols {
		f.OutCols[i] = Col{Kind: ColKind(r.u64()), Reg: r.reg()}
	}
	nBlocks := int(r.u64())
	if r.err != nil || nBlocks > 1<<20 {
		r.err = fmt.Errorf("corrupt IR blob block count")
		return f
	}
	f.Blocks = make([]*Block, nBlocks)
	for bi := range f.Blocks {
		blk := &Block{Name: r.str()}
		blk.Kind = TermKind(r.u64())
		blk.Cond = r.reg()
		blk.To = int(r.i64())
		blk.Else = int(r.i64())
		nIn := int(r.u64())
		if r.err != nil || nIn > 1<<20 {
			r.err = fmt.Errorf("corrupt IR blob instr count")
			return f
		}
		if nIn > 0 {
			blk.Instrs = make([]Instr, nIn)
		}
		for ii := range blk.Instrs {
			in := &blk.Instrs[ii]
			in.Op = Opcode(r.u64())
			in.Dst = r.reg()
			in.Dst2 = r.reg()
			in.A = r.reg()
			in.B = r.reg()
			in.Aux = int(r.i64())
			in.Val.Type = storage.ValueType(r.u64())
			in.Val.Raw = r.u64()
			in.Sym = r.str()
			nPairs := int(r.u64())
			if r.err != nil || nPairs > 1<<10 {
				r.err = fmt.Errorf("corrupt IR blob pairs")
				return f
			}
			for k := 0; k < nPairs; k++ {
				in.Pairs = append(in.Pairs, Pair{Key: r.str(), Val: r.reg()})
			}
			nCols := int(r.u64())
			if r.err != nil || nCols > 1<<10 {
				r.err = fmt.Errorf("corrupt IR blob cols")
				return f
			}
			for k := 0; k < nCols; k++ {
				in.Cols = append(in.Cols, Col{Kind: ColKind(r.u64()), Reg: r.reg()})
			}
		}
		f.Blocks[bi] = blk
	}
	return f
}
