package jit

import (
	"fmt"
	"sync/atomic"

	"poseidon/internal/core"
	"poseidon/internal/query"
	"poseidon/internal/storage"
)

// The backend: lowering optimized IR into specialized Go closures. This
// plays the role of LLVM's machine-code emission in the paper — the
// generated "code" is a flat array of step closures per basic block, each
// specialized at link time with its operand registers, resolved
// dictionary codes and immediates. Executing a pipeline costs one
// indirect call per step and one per block transfer, with zero
// allocations and no boxed tuples — in contrast to the AOT interpreter's
// per-operator dynamic dispatch and per-tuple copies.

// machine is the register file of a lowered pipeline.
type machine struct {
	ctx   *query.Ctx
	emit  query.Sink
	chunk uint64

	vals  []storage.Value
	nodes []core.NodeSnap
	rels  []core.RelSnap
	iters []any
	slots []storage.Value

	err error
}

type nodeIter interface {
	Next() (bool, error)
	Node() core.NodeSnap
}

type relIter interface {
	Next() (bool, error)
	Rel() core.RelSnap
}

// stepFn executes one lowered instruction. A false return halts the
// block; the machine's err field distinguishes failure from early exit.
type stepFn func(m *machine) bool

type lblock struct {
	steps []stepFn
	term  func(m *machine) int // next block index, -1 = return
}

// Program is a lowered, executable pipeline — the equivalent of the
// paper's linked binary object.
type Program struct {
	fn      *Fn
	blocks  []lblock
	OutCols []Col
}

// lazyCode resolves a dictionary string once, at first execution.
type lazyCode struct {
	name string
	code atomic.Uint64 // 0 unresolved; ^0 = known-missing marker handled below
}

func (c *lazyCode) get(e *core.Engine) (uint32, bool) {
	if v := c.code.Load(); v != 0 {
		return uint32(v), true
	}
	if c.name == "" {
		return 0, true // empty = no filter
	}
	v, ok := e.Dict().Lookup(c.name)
	if !ok {
		return 0, false
	}
	c.code.Store(v)
	return uint32(v), true
}

// Lower translates an optimized IR function into an executable Program.
func Lower(fn *Fn) (*Program, error) {
	p := &Program{fn: fn, OutCols: fn.OutCols}
	p.blocks = make([]lblock, len(fn.Blocks))
	for i, blk := range fn.Blocks {
		steps := make([]stepFn, 0, len(blk.Instrs))
		for _, in := range blk.Instrs {
			s, err := lowerInstr(in)
			if err != nil {
				return nil, err
			}
			steps = append(steps, s)
		}
		p.blocks[i] = lblock{steps: steps, term: lowerTerm(blk)}
	}
	return p, nil
}

func lowerTerm(blk *Block) func(*machine) int {
	switch blk.Kind {
	case TermJump:
		to := blk.To
		return func(*machine) int { return to }
	case TermBranch:
		cond, to, els := blk.Cond, blk.To, blk.Else
		return func(m *machine) int {
			if m.vals[cond].Type == storage.TypeBool && m.vals[cond].Bool() {
				return to
			}
			return els
		}
	default:
		return func(*machine) int { return -1 }
	}
}

func cmpOrd(aux int, c int) bool {
	switch aux {
	case cmpEq:
		return c == 0
	case cmpNe:
		return c != 0
	case cmpLt:
		return c < 0
	case cmpLe:
		return c <= 0
	case cmpGt:
		return c > 0
	default:
		return c >= 0
	}
}

func i64cmp(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func lowerInstr(in Instr) (stepFn, error) {
	dst, a, b := in.Dst, in.A, in.B
	switch in.Op {
	case OpConst:
		v := in.Val
		return func(m *machine) bool { m.vals[dst] = v; return true }, nil

	case OpConstStr:
		// String constants are interned, not merely looked up: a compiled
		// CREATE/SET must be able to introduce a brand-new string (the
		// interpreter interns at prepare time via EncodeValue).
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			if code, ok := lc.get(m.ctx.E); ok {
				m.vals[dst] = storage.StringValue(uint64(code))
				return true
			}
			code, err := m.ctx.E.Dict().Encode(in.Sym)
			if err != nil {
				m.err = err
				return false
			}
			lc.code.Store(code)
			m.vals[dst] = storage.StringValue(code)
			return true
		}, nil

	case OpLoadParam:
		name := in.Sym
		return func(m *machine) bool {
			v, ok := m.ctx.Params[name]
			if !ok {
				m.err = fmt.Errorf("jit: unbound parameter $%s", name)
				return false
			}
			m.vals[dst] = v
			return true
		}, nil

	case OpLoadChunk:
		return func(m *machine) bool {
			m.vals[dst] = storage.IntValue(int64(m.chunk))
			return true
		}, nil

	case OpAlloca:
		v := in.Val
		return func(m *machine) bool { m.slots[dst] = v; return true }, nil

	case OpLoad:
		return func(m *machine) bool { m.vals[dst] = m.slots[a]; return true }, nil

	case OpStore:
		return func(m *machine) bool { m.slots[dst] = m.vals[a]; return true }, nil

	case OpAddI64:
		return func(m *machine) bool {
			m.vals[dst] = storage.IntValue(m.vals[a].Int() + m.vals[b].Int())
			return true
		}, nil

	case OpAnd:
		return func(m *machine) bool {
			m.vals[dst] = storage.BoolValue(m.vals[a].Bool() && m.vals[b].Bool())
			return true
		}, nil

	case OpOr:
		return func(m *machine) bool {
			m.vals[dst] = storage.BoolValue(m.vals[a].Bool() || m.vals[b].Bool())
			return true
		}, nil

	case OpNot:
		return func(m *machine) bool {
			m.vals[dst] = storage.BoolValue(!m.vals[a].Bool())
			return true
		}, nil

	case OpCmpI64:
		aux := in.Aux
		return func(m *machine) bool {
			m.vals[dst] = storage.BoolValue(cmpOrd(aux, i64cmp(m.vals[a].Int(), m.vals[b].Int())))
			return true
		}, nil

	case OpCmpI64Guard:
		aux := in.Aux
		return func(m *machine) bool {
			l, r := m.vals[a], m.vals[b]
			if l.Type == storage.TypeInt && r.Type == storage.TypeInt {
				m.vals[dst] = storage.BoolValue(cmpOrd(aux, i64cmp(l.Int(), r.Int())))
				return true
			}
			ok, err := query.CompareValues(m.ctx.E, query.CmpOp(aux), l, r)
			if err != nil {
				m.err = err
				return false
			}
			m.vals[dst] = storage.BoolValue(ok)
			return true
		}, nil

	case OpCmpBool:
		aux := in.Aux
		return func(m *machine) bool {
			l, r := 0, 0
			if m.vals[a].Bool() {
				l = 1
			}
			if m.vals[b].Bool() {
				r = 1
			}
			m.vals[dst] = storage.BoolValue(cmpOrd(aux, l-r))
			return true
		}, nil

	case OpCmpCode:
		aux := in.Aux
		return func(m *machine) bool {
			eq := m.vals[a].Type == m.vals[b].Type && m.vals[a].Raw == m.vals[b].Raw
			m.vals[dst] = storage.BoolValue((aux == cmpEq) == eq)
			return true
		}, nil

	case OpCmpDyn:
		aux := in.Aux
		return func(m *machine) bool {
			ok, err := query.CompareValues(m.ctx.E, query.CmpOp(aux), m.vals[a], m.vals[b])
			if err != nil {
				m.err = err
				return false
			}
			m.vals[dst] = storage.BoolValue(ok)
			return true
		}, nil

	case OpNodeIDVal:
		return func(m *machine) bool {
			m.vals[dst] = storage.IntValue(int64(m.nodes[a].ID))
			return true
		}, nil

	case OpRelIDVal:
		return func(m *machine) bool {
			m.vals[dst] = storage.IntValue(int64(m.rels[a].ID))
			return true
		}, nil

	case OpNodeProp:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			if !ok {
				m.vals[dst] = storage.Value{}
				return true
			}
			v, _ := m.nodes[a].Prop(code)
			m.vals[dst] = v
			return true
		}, nil

	case OpRelProp:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			if !ok {
				m.vals[dst] = storage.Value{}
				return true
			}
			v, _ := m.rels[a].Prop(code)
			m.vals[dst] = v
			return true
		}, nil

	case OpNodeLabelEq:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			m.vals[dst] = storage.BoolValue(ok && m.nodes[a].Rec.Label == code)
			return true
		}, nil

	case OpRelLabelEq:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			m.vals[dst] = storage.BoolValue(ok && m.rels[a].Rec.Label == code)
			return true
		}, nil

	case OpRelSrcID:
		return func(m *machine) bool {
			m.vals[dst] = storage.IntValue(int64(m.rels[a].Rec.Src))
			return true
		}, nil

	case OpRelDstID:
		return func(m *machine) bool {
			m.vals[dst] = storage.IntValue(int64(m.rels[a].Rec.Dst))
			return true
		}, nil

	case OpRelOtherID:
		return func(m *machine) bool {
			r := m.rels[a].Rec
			if r.Src == m.nodes[b].ID {
				m.vals[dst] = storage.IntValue(int64(r.Dst))
			} else {
				m.vals[dst] = storage.IntValue(int64(r.Src))
			}
			return true
		}, nil

	case OpGetNode:
		dst2 := in.Dst2
		return func(m *machine) bool {
			snap, err := m.ctx.Tx.GetNode(uint64(m.vals[a].Int()))
			switch err {
			case nil:
				m.nodes[dst] = snap
				m.vals[dst2] = storage.BoolValue(true)
			case core.ErrNotFound:
				m.vals[dst2] = storage.BoolValue(false)
			default:
				m.err = err
				return false
			}
			return true
		}, nil

	case OpIterNodesInit:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			if !ok {
				m.iters[dst] = emptyIter{}
				return true
			}
			m.iters[dst] = m.ctx.Tx.NewNodeIter(code)
			return true
		}, nil

	case OpIterRelsInit:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			if !ok {
				m.iters[dst] = emptyIter{}
				return true
			}
			m.iters[dst] = m.ctx.Tx.NewRelIter(code)
			return true
		}, nil

	case OpIterChunkInit:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			if !ok {
				m.iters[dst] = emptyIter{}
				return true
			}
			from, to := query.MorselRange(uint64(m.vals[a].Int()), m.ctx.E.Nodes().ChunkCap())
			m.iters[dst] = m.ctx.Tx.NewNodeRangeIter(from, to, code)
			return true
		}, nil

	case OpIterRelChunkInit:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			if !ok {
				m.iters[dst] = emptyIter{}
				return true
			}
			from, to := query.MorselRange(uint64(m.vals[a].Int()), m.ctx.E.Rels().ChunkCap())
			m.iters[dst] = m.ctx.Tx.NewRelRangeIter(from, to, code)
			return true
		}, nil

	case OpIterOutRels:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			if !ok {
				m.iters[dst] = emptyIter{}
				return true
			}
			m.iters[dst] = m.ctx.Tx.NewOutRelIter(m.nodes[a], code)
			return true
		}, nil

	case OpIterInRels:
		lc := &lazyCode{name: in.Sym}
		return func(m *machine) bool {
			code, ok := lc.get(m.ctx.E)
			if !ok {
				m.iters[dst] = emptyIter{}
				return true
			}
			m.iters[dst] = m.ctx.Tx.NewInRelIter(m.nodes[a], code)
			return true
		}, nil

	case OpIterIndex:
		label, key, ok := cutNull(in.Sym)
		if !ok {
			return nil, fmt.Errorf("jit: malformed index symbol %q", in.Sym)
		}
		return func(m *machine) bool {
			tree, ok := m.ctx.E.IndexFor(label, key)
			if !ok {
				m.err = fmt.Errorf("jit: no index on (%s, %s)", label, key)
				return false
			}
			m.iters[dst] = m.ctx.Tx.NewIndexIter(tree, m.vals[a])
			return true
		}, nil

	case OpIterNext:
		return func(m *machine) bool {
			type nexter interface{ Next() (bool, error) }
			ok, err := m.iters[a].(nexter).Next()
			if err != nil {
				m.err = err
				return false
			}
			m.vals[dst] = storage.BoolValue(ok)
			return true
		}, nil

	case OpIterNodeGet:
		return func(m *machine) bool {
			m.nodes[dst] = m.iters[a].(nodeIter).Node()
			return true
		}, nil

	case OpIterRelGet:
		return func(m *machine) bool {
			m.rels[dst] = m.iters[a].(relIter).Rel()
			return true
		}, nil

	case OpCreateNode:
		label := in.Sym
		pairs := in.Pairs
		return func(m *machine) bool {
			props, ok := m.pairProps(pairs)
			if !ok {
				return false
			}
			id, err := m.ctx.Tx.CreateNode(label, props)
			if err != nil {
				m.err = err
				return false
			}
			snap, err := m.ctx.Tx.GetNode(id)
			if err != nil {
				m.err = err
				return false
			}
			m.nodes[dst] = snap
			return true
		}, nil

	case OpCreateRel:
		label := in.Sym
		pairs := in.Pairs
		return func(m *machine) bool {
			props, ok := m.pairProps(pairs)
			if !ok {
				return false
			}
			id, err := m.ctx.Tx.CreateRel(m.nodes[a].ID, m.nodes[b].ID, label, props)
			if err != nil {
				m.err = err
				return false
			}
			snap, err := m.ctx.Tx.GetRel(id)
			if err != nil {
				m.err = err
				return false
			}
			m.rels[dst] = snap
			return true
		}, nil

	case OpSetProps:
		pairs := in.Pairs
		isRel := in.Aux == 1
		return func(m *machine) bool {
			props, ok := m.pairProps(pairs)
			if !ok {
				return false
			}
			var err error
			if isRel {
				err = m.ctx.Tx.SetRelProps(m.rels[a].ID, props)
			} else {
				err = m.ctx.Tx.SetNodeProps(m.nodes[a].ID, props)
			}
			if err != nil {
				m.err = err
				return false
			}
			return true
		}, nil

	case OpDelete:
		isRel := in.Aux == 1
		return func(m *machine) bool {
			var err error
			if isRel {
				err = m.ctx.Tx.DeleteRel(m.rels[a].ID)
			} else {
				err = m.ctx.Tx.DetachDeleteNode(m.nodes[a].ID)
			}
			if err != nil {
				m.err = err
				return false
			}
			return true
		}, nil

	case OpEmit:
		cols := in.Cols
		return func(m *machine) bool {
			t := make(query.Tuple, len(cols))
			for i, c := range cols {
				switch c.Kind {
				case ColNode:
					t[i] = query.Datum{Kind: query.DNode, Node: m.nodes[c.Reg]}
				case ColRel:
					t[i] = query.Datum{Kind: query.DRel, Rel: m.rels[c.Reg]}
				default:
					t[i] = query.Datum{Kind: query.DVal, Val: m.vals[c.Reg]}
				}
			}
			cont, err := m.emit(t)
			if err != nil {
				m.err = err
				return false
			}
			m.vals[dst] = storage.BoolValue(cont)
			return true
		}, nil

	default:
		return nil, fmt.Errorf("jit: cannot lower opcode %d", in.Op)
	}
}

func cutNull(s string) (string, string, bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == 0 {
			return s[:i], s[i+1:], true
		}
	}
	return "", "", false
}

// pairProps evaluates update property pairs from value registers.
func (m *machine) pairProps(pairs []Pair) (map[string]any, bool) {
	if len(pairs) == 0 {
		return nil, true
	}
	props := make(map[string]any, len(pairs))
	for _, p := range pairs {
		gv, err := m.ctx.E.DecodeValue(m.vals[p.Val])
		if err != nil {
			m.err = err
			return nil, false
		}
		props[p.Key] = gv
	}
	return props, true
}

type emptyIter struct{}

func (emptyIter) Next() (bool, error) { return false, nil }
func (emptyIter) Node() core.NodeSnap { return core.NodeSnap{} }
func (emptyIter) Rel() core.RelSnap   { return core.RelSnap{} }

// Exec is a per-worker execution context reusing one machine across runs
// (morsels).
type Exec struct {
	p *Program
	m machine
}

// NewExec creates an execution context for the program.
func (p *Program) NewExec() *Exec {
	return &Exec{
		p: p,
		m: machine{
			vals:  make([]storage.Value, p.fn.NumVals),
			nodes: make([]core.NodeSnap, p.fn.NumNodes),
			rels:  make([]core.RelSnap, p.fn.NumRels),
			iters: make([]any, p.fn.NumIters),
			slots: make([]storage.Value, p.fn.NumSlots),
		},
	}
}

// Run executes the pipeline: full-scan pipelines ignore chunk; morsel
// pipelines scan only the given chunk.
func (e *Exec) Run(ctx *query.Ctx, chunk uint64, emit query.Sink) error {
	m := &e.m
	m.ctx, m.emit, m.chunk, m.err = ctx, emit, chunk, nil
	blocks := e.p.blocks
	idx := 0
	for idx >= 0 {
		blk := &blocks[idx]
		for _, s := range blk.steps {
			if !s(m) {
				return m.err
			}
		}
		idx = blk.term(m)
	}
	return m.err
}
