package jit

import (
	"fmt"
	"math/rand"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/query"
)

// Differential testing: random read-only plans must produce identical
// result multisets under the AOT interpreter and the JIT backend. This is
// the compiler's strongest correctness oracle — every operator, filter
// shape and type-specialization path gets cross-checked.

// randomExpr builds a random boolean predicate over a node column.
func randomExpr(rng *rand.Rand, col int, depth int) query.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		key := []string{"pid", "age"}[rng.Intn(2)]
		op := []query.CmpOp{query.Eq, query.Ne, query.Lt, query.Le, query.Gt, query.Ge}[rng.Intn(6)]
		return &query.Cmp{
			Op: op,
			L:  &query.Prop{Col: col, Key: key},
			R:  &query.Const{Val: int64(rng.Intn(80))},
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &query.And{L: randomExpr(rng, col, depth-1), R: randomExpr(rng, col, depth-1)}
	case 1:
		return &query.Or{L: randomExpr(rng, col, depth-1), R: randomExpr(rng, col, depth-1)}
	default:
		return &query.Not{X: randomExpr(rng, col, depth-1)}
	}
}

// randomPlan builds a random single-chain read plan over the test graph.
func randomPlan(rng *rand.Rand) *query.Plan {
	var op query.Op = &query.NodeScan{Label: "Person"}
	cols := 1 // current tuple width; col 0 is a node
	nodeCols := []int{0}

	steps := rng.Intn(4)
	for i := 0; i < steps; i++ {
		switch rng.Intn(4) {
		case 0:
			op = &query.Filter{Input: op, Pred: randomExpr(rng, nodeCols[rng.Intn(len(nodeCols))], 2)}
		case 1:
			src := nodeCols[rng.Intn(len(nodeCols))]
			dir := []query.Dir{query.Out, query.In}[rng.Intn(2)]
			op = &query.Expand{Input: op, Col: src, Dir: dir, RelLabel: "knows"}
			relCol := cols
			cols++
			op = &query.GetNode{Input: op, RelCol: relCol, End: query.Dst}
			nodeCols = append(nodeCols, cols)
			cols++
		case 2:
			op = &query.Limit{Input: op, N: 1 + rng.Intn(40)}
		case 3:
			// no-op step: keeps plan length distribution varied
		}
	}
	projCol := nodeCols[rng.Intn(len(nodeCols))]
	op = &query.Project{Input: op, Cols: []query.Expr{
		&query.Prop{Col: projCol, Key: "pid"},
		&query.Prop{Col: projCol, Key: "age"},
	}}
	return &query.Plan{Root: op}
}

func TestRandomPlansJITMatchesInterpreter(t *testing.T) {
	e, _ := buildGraph(t, core.DRAM)
	j, err := New(e)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20260705))
	for i := 0; i < 60; i++ {
		plan := randomPlan(rng)
		pr, err := query.Prepare(e, plan)
		if err != nil {
			t.Fatal(err)
		}
		tx := e.Begin()
		want, err := pr.Collect(tx, nil)
		if err != nil {
			tx.Abort()
			t.Fatalf("plan %d interp: %v\n%s", i, err, plan.Signature())
		}
		var got []query.Row
		if _, err := j.Run(tx, plan, nil, func(r query.Row) bool {
			got = append(got, r)
			return true
		}); err != nil {
			tx.Abort()
			t.Fatalf("plan %d jit: %v\n%s", i, err, plan.Signature())
		}
		tx.Abort()

		// Plans without Limit must match as multisets; Limit makes result
		// choice order-dependent, so compare counts only there.
		if hasLimit(plan.Root) {
			if len(got) != len(want) {
				t.Fatalf("plan %d (limit): jit %d rows, interp %d\n%s",
					i, len(got), len(want), plan.Signature())
			}
			continue
		}
		if !equalMultiset(got, want) {
			t.Fatalf("plan %d differs (%d vs %d rows)\n%s",
				i, len(got), len(want), plan.Signature())
		}
	}
}

func hasLimit(op query.Op) bool {
	for cur := op; cur != nil; cur = childOf(cur) {
		if _, ok := cur.(*query.Limit); ok {
			return true
		}
	}
	return false
}

func equalMultiset(a, b []query.Row) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	key := func(r query.Row) string {
		s := ""
		for _, v := range r {
			s += fmt.Sprintf("%d/%d|", v.Type, v.Raw)
		}
		return s
	}
	for _, r := range a {
		count[key(r)]++
	}
	for _, r := range b {
		count[key(r)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}
