package jit

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/query"
	"poseidon/internal/trace"
)

// Engine is the JIT query engine wrapping a graph engine: it compiles
// graph-algebra plans to optimized pipelines, caches compiled code in
// memory and (serialized) in PMem, and provides the paper's execution
// modes: AOT interpretation, JIT compilation and adaptive execution.
type Engine struct {
	core  *core.Engine
	cache *pcache

	mu  sync.Mutex
	mem map[string]*Compiled

	// tel holds the metric handles; the zero value (all nil) is the
	// disabled no-op path.
	tel Telemetry
}

// Compiled is a ready-to-run compilation result.
type Compiled struct {
	Sig    string
	Plan   *query.MorselPlan
	Full   *Program // full-scan pipeline (single-threaded execution)
	Morsel *Program // chunk-driven pipeline (adaptive/parallel execution)

	// CompileTime is the wall time of codegen + passes + lowering (or
	// just relinking, when the code came from the persistent cache).
	CompileTime time.Duration
	FromCache   bool
	Stats       []PassStat
}

// New creates a JIT engine, opening the persistent code cache inside the
// graph engine's pool.
func New(e *core.Engine) (*Engine, error) {
	c, err := openCache(e)
	if err != nil {
		return nil, err
	}
	return &Engine{core: e, cache: c, mem: make(map[string]*Compiled)}, nil
}

// Core returns the wrapped graph engine.
func (j *Engine) Core() *core.Engine { return j.core }

// InvalidateSession drops the in-memory code cache (the persistent cache
// stays, simulating a restart where code is relinked from PMem).
func (j *Engine) InvalidateSession() {
	j.mu.Lock()
	j.mem = make(map[string]*Compiled)
	j.mu.Unlock()
}

// Compile produces (or fetches) the compiled form of a plan. The paper's
// flow: derive the query identifier, look up the persistent hash map; on
// a hit, link the stored code; otherwise generate IR, run the
// optimization cascade, lower, and persist.
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (j *Engine) Compile(plan *query.Plan) (*Compiled, error) {
	return j.CompileCtx(context.Background(), plan)
}

// CompileCtx is Compile with a cancellation context, checked at every
// stage boundary (cache lookup, codegen, pass cascade, lowering). The
// adaptive executor uses it so that cancelling a query also cancels its
// background compilation instead of leaving a goroutine finishing work
// nobody will use.
func (j *Engine) CompileCtx(ctx context.Context, plan *query.Plan) (*Compiled, error) {
	if ctx == nil {
		//poseidonlint:ignore ctx-threading nil-ctx compatibility guard for legacy callers
		ctx = context.Background()
	}
	ctx, sp := trace.StartSpan(ctx, "jit.compile", trace.KindJIT)
	c, err := j.compileCtx(ctx, plan)
	if c != nil {
		sp.SetAttr("from_cache", c.FromCache)
		sp.SetAttr("compile_ns", int64(c.CompileTime))
	}
	sp.SetError(err)
	sp.End()
	return c, err
}

// compileCtx is CompileCtx without the tracing envelope.
func (j *Engine) compileCtx(ctx context.Context, plan *query.Plan) (*Compiled, error) {
	sig := plan.Signature()
	j.mu.Lock()
	if c, ok := j.mem[sig]; ok {
		j.mu.Unlock()
		j.tel.MemHits.Inc()
		trace.FromContext(ctx).SetAttr("source", "mem")
		return c, nil
	}
	j.mu.Unlock()

	mp, ok := query.SplitPipeline(plan)
	if !ok {
		return nil, fmt.Errorf("%w: plan contains a join", ErrUnsupported)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	start := time.Now()
	if blob, hit := j.cache.lookup(sig); hit {
		bundle, err := decodeBundle(blob)
		if err == nil {
			full, err1 := Lower(bundle.Full)
			morsel, err2 := Lower(bundle.Morsel)
			if err1 == nil && err2 == nil {
				c := &Compiled{
					Sig: sig, Plan: mp, Full: full, Morsel: morsel,
					CompileTime: time.Since(start), FromCache: true,
				}
				j.remember(c)
				j.tel.PersistHits.Inc()
				trace.FromContext(ctx).SetAttr("source", "pmem")
				return c, nil
			}
		}
		// A corrupt or stale cache entry falls through to recompilation.
	}

	fullFn, err := Compile(mp, false)
	if err != nil {
		return nil, err
	}
	morselFn, err := Compile(mp, true)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stats := Optimize(fullFn)
	Optimize(morselFn)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	full, err := Lower(fullFn)
	if err != nil {
		return nil, err
	}
	morsel, err := Lower(morselFn)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Sig: sig, Plan: mp, Full: full, Morsel: morsel,
		CompileTime: time.Since(start), Stats: stats,
	}
	if blob, err := encodeBundle(&codeBundle{Full: fullFn, Morsel: morselFn}); err == nil {
		_ = j.cache.store(sig, blob) // cache-full is non-fatal
	}
	j.remember(c)
	j.tel.Compiles.Inc()
	j.tel.CompileTime.ObserveDuration(c.CompileTime)
	trace.FromContext(ctx).SetAttr("source", "compile")
	return c, nil
}

// CompileUncached always performs the full compilation (codegen, pass
// cascade, lowering), bypassing both the in-memory and the persistent
// cache. Benchmarks use it to measure the cold-code path.
func (j *Engine) CompileUncached(plan *query.Plan) (*Compiled, error) {
	sig := plan.Signature()
	mp, ok := query.SplitPipeline(plan)
	if !ok {
		return nil, fmt.Errorf("%w: plan contains a join", ErrUnsupported)
	}
	start := time.Now()
	fullFn, err := Compile(mp, false)
	if err != nil {
		return nil, err
	}
	morselFn, err := Compile(mp, true)
	if err != nil {
		return nil, err
	}
	stats := Optimize(fullFn)
	Optimize(morselFn)
	full, err := Lower(fullFn)
	if err != nil {
		return nil, err
	}
	morsel, err := Lower(morselFn)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		Sig: sig, Plan: mp, Full: full, Morsel: morsel,
		CompileTime: time.Since(start), Stats: stats,
	}
	j.remember(c)
	j.tel.Compiles.Inc()
	j.tel.CompileTime.ObserveDuration(c.CompileTime)
	return c, nil
}

func (j *Engine) remember(c *Compiled) {
	j.mu.Lock()
	j.mem[c.Sig] = c
	j.mu.Unlock()
}

// RunStats reports the cost breakdown of one execution.
type RunStats struct {
	CompileTime time.Duration
	ExecTime    time.Duration
	FromCache   bool
	Compiled    bool // false when execution fell back to interpretation
	Adaptive    struct {
		InterpretedMorsels int
		CompiledMorsels    int
	}
}

// Run executes the plan in JIT mode within tx: compile (or fetch), run
// the compiled pipeline single-threaded, then the breaker tail.
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (j *Engine) Run(tx *core.Tx, plan *query.Plan, params query.Params, emit func(query.Row) bool) (RunStats, error) {
	return j.RunCtx(context.Background(), tx, plan, params, emit)
}

// RunCtx is Run with a cancellation context. The compiled pipeline drives
// the same transaction-level iterators as the interpreter, so a cancelled
// context aborts mid-scan with per-record granularity and RunCtx returns
// ctx.Err().
func (j *Engine) RunCtx(cctx context.Context, tx *core.Tx, plan *query.Plan, params query.Params, emit func(query.Row) bool) (RunStats, error) {
	var st RunStats
	if cctx == nil {
		//poseidonlint:ignore ctx-threading nil-ctx compatibility guard for legacy callers
		cctx = context.Background()
	}
	c, err := j.CompileCtx(cctx, plan)
	if err != nil {
		return st, err
	}
	st.CompileTime = c.CompileTime
	st.FromCache = c.FromCache
	st.Compiled = true

	bound, err := query.BindParams(j.core, params)
	if err != nil {
		return st, err
	}
	prev := tx.WithContext(cctx)
	defer tx.WithContext(prev)
	ctx := &query.Ctx{E: j.core, Tx: tx, Params: bound, Context: cctx}

	_, esp := trace.StartSpan(cctx, "jit.exec", trace.KindJIT)
	esp.SetAttr("from_cache", c.FromCache)
	start := time.Now()
	err = j.runCompiled(c, ctx, emit)
	st.ExecTime = time.Since(start)
	esp.SetError(err)
	esp.End()
	return st, err
}

func (j *Engine) runCompiled(c *Compiled, ctx *query.Ctx, emit func(query.Row) bool) error {
	exec := c.Full.NewExec()
	if len(c.Plan.Tail) == 0 {
		// Streaming: emit rows directly from the compiled pipeline.
		sink := func(t query.Tuple) (bool, error) { return emit(query.ToRow(t)), nil }
		return exec.Run(ctx, 0, sink)
	}
	var collected []query.Tuple
	sink := func(t query.Tuple) (bool, error) {
		collected = append(collected, t)
		return true, nil
	}
	if err := exec.Run(ctx, 0, sink); err != nil {
		return err
	}
	return c.Plan.RunTail(ctx, collected, emit)
}

// RunAdaptive executes the plan with the paper's adaptive strategy
// (§6.2, Fig 3): morsels are processed by the AOT interpreter while a
// background goroutine compiles the pipeline; once compilation finishes,
// the task function is swapped and the remaining morsels run compiled.
// Plans that cannot be parallelized fall back to Run (JIT).
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (j *Engine) RunAdaptive(tx *core.Tx, plan *query.Plan, params query.Params, workers int, emit func(query.Row) bool) (RunStats, error) {
	return j.RunAdaptiveCtx(context.Background(), tx, plan, params, workers, emit)
}

// RunAdaptiveCtx is RunAdaptive with a cancellation context: workers stop
// claiming morsels, the background compilation is cancelled at its next
// stage boundary, no goroutine is left behind, and the call returns
// ctx.Err().
func (j *Engine) RunAdaptiveCtx(cctx context.Context, tx *core.Tx, plan *query.Plan, params query.Params, workers int, emit func(query.Row) bool) (RunStats, error) {
	var st RunStats
	mp, ok := query.SplitForMorsels(plan)
	if !ok {
		return j.RunCtx(cctx, tx, plan, params, emit)
	}
	if cctx == nil {
		//poseidonlint:ignore ctx-threading nil-ctx compatibility guard for legacy callers
		cctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bound, err := query.BindParams(j.core, params)
	if err != nil {
		return st, err
	}
	prev := tx.WithContext(cctx)
	defer tx.WithContext(prev)
	// The adaptive span parents the background jit.compile span (it
	// compiles under cctx), so a trace shows exactly when the tier switch
	// became possible.
	cctx, asp := trace.StartSpan(cctx, "jit.adaptive", trace.KindJIT)
	asp.SetAttr("workers", int64(workers))
	ctx := &query.Ctx{E: j.core, Tx: tx, Params: bound, Context: cctx}

	var nchunks uint64
	if _, isRel := mp.Leaf.(*query.RelScan); isRel {
		nchunks = query.MorselCount(j.core.Rels().MaxID(), j.core.Rels().ChunkCap())
	} else {
		nchunks = query.MorselCount(j.core.Nodes().MaxID(), j.core.Nodes().ChunkCap())
	}

	// Already-linked code is used directly; otherwise compilation runs in
	// the background and the pointer swap is the paper's "redirecting the
	// static task function to the compiled function".
	var compiledProg atomic.Pointer[Program]
	compileDone := make(chan *Compiled, 1)
	j.mu.Lock()
	pre := j.mem[plan.Signature()]
	j.mu.Unlock()
	if pre != nil {
		compiledProg.Store(pre.Morsel)
		compileDone <- pre
	} else {
		go func() {
			// The run's context cancels the compilation at its next stage
			// boundary; compileDone is buffered so the send never blocks.
			c, err := j.CompileCtx(cctx, plan)
			if err != nil {
				compileDone <- nil
				return
			}
			compiledProg.Store(c.Morsel)
			compileDone <- c
		}()
	}

	var mu sync.Mutex
	var collected []query.Tuple
	stopped := false
	streaming := len(mp.Tail) == 0
	var interpMorsels, compiledMorsels atomic.Int64
	collect := func(t query.Tuple) (bool, error) {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return false, nil
		}
		if streaming {
			if !emit(query.ToRow(t)) {
				stopped = true
				return false, nil
			}
			return true, nil
		}
		collected = append(collected, append(query.Tuple(nil), t...))
		return true, nil
	}

	start := time.Now()
	var next atomic.Uint64
	var firstErr query.FirstError
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var chunk uint64
			interp, err := mp.PipelineRunner(ctx, &chunk, collect)
			if err != nil {
				firstErr.Set(err)
				return
			}
			var exec *Exec
			for {
				c := next.Add(1) - 1
				if c >= nchunks || firstErr.Pending() || cctx.Err() != nil {
					return
				}
				mu.Lock()
				done := stopped
				mu.Unlock()
				if done {
					return
				}
				if prog := compiledProg.Load(); prog != nil {
					if exec == nil {
						exec = prog.NewExec()
					}
					compiledMorsels.Add(1)
					if err := exec.Run(ctx, c, collect); err != nil {
						firstErr.Set(err)
						return
					}
					continue
				}
				interpMorsels.Add(1)
				chunk = c
				if err := interp(); err != nil {
					firstErr.Set(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Don't block on a compilation that is still running when the query
	// was cancelled — it observes the same context and exits on its own;
	// compileDone is buffered so its send never blocks either way.
	select {
	case c := <-compileDone:
		if c != nil {
			st.CompileTime = c.CompileTime
			st.FromCache = c.FromCache
			st.Compiled = true
		}
	case <-cctx.Done():
	}
	st.Adaptive.InterpretedMorsels = int(interpMorsels.Load())
	st.Adaptive.CompiledMorsels = int(compiledMorsels.Load())
	j.tel.MorselsInterpreted.Add(uint64(st.Adaptive.InterpretedMorsels))
	j.tel.MorselsCompiled.Add(uint64(st.Adaptive.CompiledMorsels))
	asp.SetAttr("morsels_interpreted", int64(st.Adaptive.InterpretedMorsels))
	asp.SetAttr("morsels_compiled", int64(st.Adaptive.CompiledMorsels))
	if st.Adaptive.InterpretedMorsels > 0 && st.Adaptive.CompiledMorsels > 0 {
		j.tel.Switchovers.Inc()
		asp.SetAttr("switchover", true)
	}

	if err := cctx.Err(); err != nil {
		asp.SetError(err)
		asp.End()
		return st, err
	}
	if err := firstErr.Err(); err != nil {
		asp.SetError(err)
		asp.End()
		return st, err
	}
	if !streaming {
		if err := mp.RunTail(ctx, collected, emit); err != nil {
			asp.SetError(err)
			asp.End()
			return st, err
		}
	}
	st.ExecTime = time.Since(start)
	asp.End()
	return st, nil
}
