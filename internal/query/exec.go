package query

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"poseidon/internal/core"
	"poseidon/internal/storage"
)

// The AOT-compiled interpreter (§6.1/§6.2 "interpretation mode"): each
// operator is translated into an interpret function; the functions are
// linked into a cascade of closures that push tuples downstream. Values
// cross operator boundaries boxed in Datum structs and expressions are
// evaluated through dynamic dispatch — exactly the overheads the JIT
// backend removes.

// DatumKind tags a tuple column.
type DatumKind uint8

// Tuple column kinds.
const (
	DNode DatumKind = iota
	DRel
	DVal
)

// Datum is one tuple column: a node snapshot, a relationship snapshot or
// a plain value.
type Datum struct {
	Kind DatumKind
	Node core.NodeSnap
	Rel  core.RelSnap
	Val  storage.Value
}

// Tuple is a row flowing through the pipeline.
type Tuple []Datum

// Row is a finished output row of plain values.
type Row []storage.Value

// Params binds query parameters by name.
type Params map[string]any

// ErrBadPlan reports a structurally invalid plan.
var ErrBadPlan = errors.New("query: invalid plan")

// Sink consumes a tuple and reports whether the producer should continue.
// Sinks are the push-based links between operators (§6.1).
type Sink func(t Tuple) (bool, error)

// codeRef lazily resolves a dictionary string to its code. Resolution is
// cached; a missing string stays unresolved (matching nothing) until it
// appears in the dictionary.
type codeRef struct {
	name string
	code atomic.Uint64
}

func (c *codeRef) get(e *core.Engine) (uint64, bool) {
	if v := c.code.Load(); v != 0 {
		return v, true
	}
	if c.name == "" {
		return 0, false
	}
	v, ok := e.Dict().Lookup(c.name)
	if !ok {
		return 0, false
	}
	c.code.Store(v)
	return v, true
}

// Prepared is a plan bound to an engine, ready for repeated execution.
type Prepared struct {
	E    *core.Engine
	Plan *Plan
	Sig  string
}

// Prepare validates and binds a plan to an engine.
func Prepare(e *core.Engine, p *Plan) (*Prepared, error) {
	if p == nil || p.Root == nil {
		return nil, fmt.Errorf("%w: empty plan", ErrBadPlan)
	}
	return &Prepared{E: e, Plan: p, Sig: p.Signature()}, nil
}

// Ctx is the per-execution state shared by all operators of a run.
type Ctx struct {
	E      *core.Engine
	Tx     *core.Tx
	Params map[string]storage.Value
	// Context is the cancellation context of the run (nil on the legacy
	// entry points). Scans observe it through the transaction; operators
	// that replay materialized tuples check it directly.
	Context context.Context
}

// err reports the run's cancellation state.
func (c *Ctx) err() error {
	if c.Context == nil {
		return nil
	}
	return c.Context.Err()
}

// BindParams encodes parameter values (interning strings).
func BindParams(e *core.Engine, params Params) (map[string]storage.Value, error) {
	out := make(map[string]storage.Value, len(params))
	for k, v := range params {
		val, err := e.EncodeValue(v)
		if err != nil {
			return nil, fmt.Errorf("query: param %s: %w", k, err)
		}
		out[k] = val
	}
	return out, nil
}

// Run executes the plan in interpretation mode within tx, calling emit
// for every result row until exhaustion or emit returns false.
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (pr *Prepared) Run(tx *core.Tx, params Params, emit func(Row) bool) error {
	return pr.RunCtx(context.Background(), tx, params, emit)
}

// RunCtx is Run with a cancellation context. The context is attached to
// the transaction for the duration of the run, so a cancellation mid-scan
// aborts the transaction (discarding any uncommitted writes) and RunCtx
// returns ctx.Err().
func (pr *Prepared) RunCtx(ctx context.Context, tx *core.Tx, params Params, emit func(Row) bool) error {
	if ctx == nil {
		//poseidonlint:ignore ctx-threading nil-ctx compatibility guard for legacy callers
		ctx = context.Background()
	}
	bound, err := BindParams(pr.E, params)
	if err != nil {
		return err
	}
	prev := tx.WithContext(ctx)
	defer tx.WithContext(prev)
	qctx := &Ctx{E: pr.E, Tx: tx, Params: bound, Context: ctx}
	terminal := func(t Tuple) (bool, error) {
		if err := qctx.err(); err != nil {
			return false, err
		}
		return emit(tupleToRow(t)), nil
	}
	run, err := buildOp(pr.Plan.Root, qctx, terminal)
	if err != nil {
		return err
	}
	return run()
}

// Collect executes the plan and gathers all rows.
//
//poseidonlint:ignore ctx-threading legacy convenience shim over CollectCtx, kept for pre-session callers (CHANGES.md migration table)
func (pr *Prepared) Collect(tx *core.Tx, params Params) ([]Row, error) {
	return pr.CollectCtx(context.Background(), tx, params)
}

// CollectCtx executes the plan under ctx and gathers all rows.
func (pr *Prepared) CollectCtx(ctx context.Context, tx *core.Tx, params Params) ([]Row, error) {
	var rows []Row
	err := pr.RunCtx(ctx, tx, params, func(r Row) bool {
		rows = append(rows, r)
		return true
	})
	return rows, err
}

// ToRow converts a tuple to a row of plain values (nodes and
// relationships become their ids).
func ToRow(t Tuple) Row { return tupleToRow(t) }

func tupleToRow(t Tuple) Row {
	row := make(Row, len(t))
	for i, d := range t {
		switch d.Kind {
		case DNode:
			row[i] = storage.IntValue(int64(d.Node.ID))
		case DRel:
			row[i] = storage.IntValue(int64(d.Rel.ID))
		default:
			row[i] = d.Val
		}
	}
	return row
}

// buildOp recursively links the operator cascade: each pipeline operator
// wraps the downstream sink; access paths return the pipeline driver.
func buildOp(op Op, ctx *Ctx, out Sink) (func() error, error) {
	switch o := op.(type) {
	case *NodeScan:
		return buildNodeScan(o, ctx, out)
	case *RelScan:
		return buildRelScan(o, ctx, out)
	case *NodeByID:
		return buildNodeByID(o, ctx, out)
	case *IndexScan:
		return buildIndexScan(o, ctx, out)
	case *CreateNode:
		return buildCreateNode(o, ctx, out)
	case *Expand:
		return buildExpand(o, ctx, out)
	case *GetNode:
		return buildGetNode(o, ctx, out)
	case *NodeLookup:
		return buildNodeLookup(o, ctx, out)
	case *Filter:
		return buildFilter(o, ctx, out)
	case *Project:
		return buildProject(o, ctx, out)
	case *Limit:
		return buildLimit(o, ctx, out)
	case *OrderBy:
		return buildOrderBy(o, ctx, out)
	case *Distinct:
		return buildDistinct(o, ctx, out)
	case *CountAgg:
		return buildCountAgg(o, ctx, out)
	case *HashJoin:
		return buildHashJoin(o, ctx, out)
	case *CreateRel:
		return buildCreateRel(o, ctx, out)
	case *SetProps:
		return buildSetProps(o, ctx, out)
	case *Delete:
		return buildDelete(o, ctx, out)
	case *chunkScan:
		return buildChunkScan(o, ctx, out)
	case *tupleSource:
		return buildTupleSource(o, ctx, out)
	default:
		return nil, fmt.Errorf("%w: unknown operator %T", ErrBadPlan, op)
	}
}

// --- access paths ---

func buildNodeScan(o *NodeScan, ctx *Ctx, out Sink) (func() error, error) {
	ref := &codeRef{name: o.Label}
	return func() error {
		var labelCode uint64
		if o.Label != "" {
			code, ok := ref.get(ctx.E)
			if !ok {
				return nil // label never seen: empty result
			}
			labelCode = code
		}
		var sinkErr error
		err := ctx.Tx.ScanNodes(func(n core.NodeSnap) bool {
			if labelCode != 0 && uint64(n.Rec.Label) != labelCode {
				return true
			}
			cont, err := out(Tuple{{Kind: DNode, Node: n}})
			if err != nil {
				sinkErr = err
				return false
			}
			return cont
		})
		if err != nil {
			return err
		}
		return sinkErr
	}, nil
}

func buildRelScan(o *RelScan, ctx *Ctx, out Sink) (func() error, error) {
	ref := &codeRef{name: o.Label}
	return func() error {
		var labelCode uint64
		if o.Label != "" {
			code, ok := ref.get(ctx.E)
			if !ok {
				return nil
			}
			labelCode = code
		}
		var sinkErr error
		err := ctx.Tx.ScanRels(func(r core.RelSnap) bool {
			if labelCode != 0 && uint64(r.Rec.Label) != labelCode {
				return true
			}
			cont, err := out(Tuple{{Kind: DRel, Rel: r}})
			if err != nil {
				sinkErr = err
				return false
			}
			return cont
		})
		if err != nil {
			return err
		}
		return sinkErr
	}, nil
}

func buildNodeByID(o *NodeByID, ctx *Ctx, out Sink) (func() error, error) {
	return func() error {
		v, ok := ctx.Params[o.Param]
		if !ok {
			return fmt.Errorf("query: unbound parameter $%s", o.Param)
		}
		n, err := ctx.Tx.GetNode(uint64(v.Int()))
		if err == core.ErrNotFound {
			return nil
		}
		if err != nil {
			return err
		}
		_, err = out(Tuple{{Kind: DNode, Node: n}})
		return err
	}, nil
}

func buildIndexScan(o *IndexScan, ctx *Ctx, out Sink) (func() error, error) {
	val, err := buildExpr(o.Value, ctx.E)
	if err != nil {
		return nil, err
	}
	return func() error {
		tree, ok := ctx.E.IndexFor(o.Label, o.Key)
		if !ok {
			return fmt.Errorf("query: no index on (%s, %s)", o.Label, o.Key)
		}
		key, err := val(ctx, nil)
		if err != nil {
			return err
		}
		snaps, err := ctx.Tx.IndexedLookup(tree, key)
		if err != nil {
			return err
		}
		for _, n := range snaps {
			cont, err := out(Tuple{{Kind: DNode, Node: n}})
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		return nil
	}, nil
}

func buildCreateNode(o *CreateNode, ctx *Ctx, out Sink) (func() error, error) {
	evals, err := buildPropSpecs(o.Props, ctx.E)
	if err != nil {
		return nil, err
	}
	createInto := func(t Tuple) (bool, error) {
		props, err := evalPropSpecs(evals, ctx, t)
		if err != nil {
			return false, err
		}
		id, err := ctx.Tx.CreateNode(o.Label, props)
		if err != nil {
			return false, err
		}
		n, err := ctx.Tx.GetNode(id)
		if err != nil {
			return false, err
		}
		nt := make(Tuple, len(t)+1)
		copy(nt, t)
		nt[len(t)] = Datum{Kind: DNode, Node: n}
		return out(nt)
	}
	if o.Input == nil {
		return func() error {
			_, err := createInto(nil)
			return err
		}, nil
	}
	return buildOp(o.Input, ctx, createInto)
}

// --- pipeline operators ---

func buildExpand(o *Expand, ctx *Ctx, out Sink) (func() error, error) {
	ref := &codeRef{name: o.RelLabel}
	own := func(t Tuple) (bool, error) {
		if o.Col >= len(t) || t[o.Col].Kind != DNode {
			return false, fmt.Errorf("%w: Expand column %d is not a node", ErrBadPlan, o.Col)
		}
		var labelCode uint64
		if o.RelLabel != "" {
			code, ok := ref.get(ctx.E)
			if !ok {
				return true, nil
			}
			labelCode = code
		}
		cont := true
		var sinkErr error
		visit := func(r core.RelSnap) bool {
			if labelCode != 0 && uint64(r.Rec.Label) != labelCode {
				return true
			}
			// The interpreter copies the tuple at every operator boundary —
			// the boxing overhead compiled code avoids.
			nt := make(Tuple, len(t)+1)
			copy(nt, t)
			nt[len(t)] = Datum{Kind: DRel, Rel: r}
			cont, sinkErr = out(nt)
			return cont && sinkErr == nil
		}
		node := t[o.Col].Node
		if o.Dir == Out || o.Dir == Both {
			if err := ctx.Tx.OutRels(node, visit); err != nil {
				return false, err
			}
		}
		if sinkErr == nil && cont && (o.Dir == In || o.Dir == Both) {
			if err := ctx.Tx.InRels(node, visit); err != nil {
				return false, err
			}
		}
		return cont, sinkErr
	}
	return buildOp(o.Input, ctx, own)
}

func buildGetNode(o *GetNode, ctx *Ctx, out Sink) (func() error, error) {
	own := func(t Tuple) (bool, error) {
		if o.RelCol >= len(t) || t[o.RelCol].Kind != DRel {
			return false, fmt.Errorf("%w: GetNode column %d is not a relationship", ErrBadPlan, o.RelCol)
		}
		rel := t[o.RelCol].Rel
		var target uint64
		switch o.End {
		case Src:
			target = rel.Rec.Src
		case Dst:
			target = rel.Rec.Dst
		case Other:
			if o.OtherCol >= len(t) || t[o.OtherCol].Kind != DNode {
				return false, fmt.Errorf("%w: GetNode other-column %d is not a node", ErrBadPlan, o.OtherCol)
			}
			if rel.Rec.Src == t[o.OtherCol].Node.ID {
				target = rel.Rec.Dst
			} else {
				target = rel.Rec.Src
			}
		}
		n, err := ctx.Tx.GetNode(target)
		if err == core.ErrNotFound {
			return true, nil
		}
		if err != nil {
			return false, err
		}
		nt := make(Tuple, len(t)+1)
		copy(nt, t)
		nt[len(t)] = Datum{Kind: DNode, Node: n}
		return out(nt)
	}
	return buildOp(o.Input, ctx, own)
}

func buildNodeLookup(o *NodeLookup, ctx *Ctx, out Sink) (func() error, error) {
	val, err := buildExpr(o.Value, ctx.E)
	if err != nil {
		return nil, err
	}
	own := func(t Tuple) (bool, error) {
		tree, ok := ctx.E.IndexFor(o.Label, o.Key)
		if !ok {
			return false, fmt.Errorf("query: no index on (%s, %s)", o.Label, o.Key)
		}
		key, err := val(ctx, t)
		if err != nil {
			return false, err
		}
		snaps, err := ctx.Tx.IndexedLookup(tree, key)
		if err != nil {
			return false, err
		}
		for _, n := range snaps {
			nt := make(Tuple, len(t)+1)
			copy(nt, t)
			nt[len(t)] = Datum{Kind: DNode, Node: n}
			cont, err := out(nt)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	return buildOp(o.Input, ctx, own)
}

func buildFilter(o *Filter, ctx *Ctx, out Sink) (func() error, error) {
	pred, err := buildPred(o.Pred, ctx.E)
	if err != nil {
		return nil, err
	}
	own := func(t Tuple) (bool, error) {
		ok, err := pred(ctx, t)
		if err != nil {
			return false, err
		}
		if !ok {
			return true, nil
		}
		return out(t)
	}
	return buildOp(o.Input, ctx, own)
}

func buildProject(o *Project, ctx *Ctx, out Sink) (func() error, error) {
	evals := make([]evalFn, len(o.Cols))
	for i, c := range o.Cols {
		fn, err := buildExpr(c, ctx.E)
		if err != nil {
			return nil, err
		}
		evals[i] = fn
	}
	own := func(t Tuple) (bool, error) {
		nt := make(Tuple, len(evals))
		for i, fn := range evals {
			v, err := fn(ctx, t)
			if err != nil {
				return false, err
			}
			nt[i] = Datum{Kind: DVal, Val: v}
		}
		return out(nt)
	}
	return buildOp(o.Input, ctx, own)
}

func buildLimit(o *Limit, ctx *Ctx, out Sink) (func() error, error) {
	n := 0
	own := func(t Tuple) (bool, error) {
		if n >= o.N {
			return false, nil
		}
		n++
		cont, err := out(t)
		return cont && n < o.N, err
	}
	return buildOp(o.Input, ctx, own)
}

func buildOrderBy(o *OrderBy, ctx *Ctx, out Sink) (func() error, error) {
	key, err := buildExpr(o.Key, ctx.E)
	if err != nil {
		return nil, err
	}
	type item struct {
		t Tuple
		k storage.Value
	}
	var buf []item
	own := func(t Tuple) (bool, error) {
		k, err := key(ctx, t)
		if err != nil {
			return false, err
		}
		buf = append(buf, item{append(Tuple(nil), t...), k})
		return true, nil
	}
	childRun, err := buildOp(o.Input, ctx, own)
	if err != nil {
		return nil, err
	}
	return func() error {
		buf = buf[:0]
		if err := childRun(); err != nil {
			return err
		}
		sort.SliceStable(buf, func(i, j int) bool {
			if o.Desc {
				return buf[j].k.Less(buf[i].k)
			}
			return buf[i].k.Less(buf[j].k)
		})
		n := len(buf)
		if o.Limit > 0 && o.Limit < n {
			n = o.Limit
		}
		for i := 0; i < n; i++ {
			cont, err := out(buf[i].t)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		return nil
	}, nil
}

func buildDistinct(o *Distinct, ctx *Ctx, out Sink) (func() error, error) {
	key, err := buildExpr(o.Key, ctx.E)
	if err != nil {
		return nil, err
	}
	seen := make(map[storage.Value]struct{})
	own := func(t Tuple) (bool, error) {
		k, err := key(ctx, t)
		if err != nil {
			return false, err
		}
		if _, dup := seen[k]; dup {
			return true, nil
		}
		seen[k] = struct{}{}
		return out(t)
	}
	return buildOp(o.Input, ctx, own)
}

func buildCountAgg(o *CountAgg, ctx *Ctx, out Sink) (func() error, error) {
	var count int64
	own := func(Tuple) (bool, error) {
		count++
		return true, nil
	}
	childRun, err := buildOp(o.Input, ctx, own)
	if err != nil {
		return nil, err
	}
	return func() error {
		count = 0
		if err := childRun(); err != nil {
			return err
		}
		_, err := out(Tuple{{Kind: DVal, Val: storage.IntValue(count)}})
		return err
	}, nil
}

func buildHashJoin(o *HashJoin, ctx *Ctx, out Sink) (func() error, error) {
	lkey, err := buildExpr(o.LKey, ctx.E)
	if err != nil {
		return nil, err
	}
	rkey, err := buildExpr(o.RKey, ctx.E)
	if err != nil {
		return nil, err
	}
	table := make(map[storage.Value][]Tuple)
	rightSink := func(t Tuple) (bool, error) {
		k, err := rkey(ctx, t)
		if err != nil {
			return false, err
		}
		table[k] = append(table[k], append(Tuple(nil), t...))
		return true, nil
	}
	rightRun, err := buildOp(o.Right, ctx, rightSink)
	if err != nil {
		return nil, err
	}
	leftSink := func(t Tuple) (bool, error) {
		k, err := lkey(ctx, t)
		if err != nil {
			return false, err
		}
		for _, rt := range table[k] {
			nt := make(Tuple, len(t)+len(rt))
			copy(nt, t)
			copy(nt[len(t):], rt)
			cont, err := out(nt)
			if err != nil || !cont {
				return cont, err
			}
		}
		return true, nil
	}
	leftRun, err := buildOp(o.Left, ctx, leftSink)
	if err != nil {
		return nil, err
	}
	return func() error {
		clear(table)
		// Materialize the right side first (§6.2), then stream the left.
		if err := rightRun(); err != nil {
			return err
		}
		return leftRun()
	}, nil
}

// --- update operators ---

func buildCreateRel(o *CreateRel, ctx *Ctx, out Sink) (func() error, error) {
	evals, err := buildPropSpecs(o.Props, ctx.E)
	if err != nil {
		return nil, err
	}
	own := func(t Tuple) (bool, error) {
		if o.SrcCol >= len(t) || t[o.SrcCol].Kind != DNode ||
			o.DstCol >= len(t) || t[o.DstCol].Kind != DNode {
			return false, fmt.Errorf("%w: CreateRel endpoints must be nodes", ErrBadPlan)
		}
		props, err := evalPropSpecs(evals, ctx, t)
		if err != nil {
			return false, err
		}
		id, err := ctx.Tx.CreateRel(t[o.SrcCol].Node.ID, t[o.DstCol].Node.ID, o.Label, props)
		if err != nil {
			return false, err
		}
		r, err := ctx.Tx.GetRel(id)
		if err != nil {
			return false, err
		}
		nt := make(Tuple, len(t)+1)
		copy(nt, t)
		nt[len(t)] = Datum{Kind: DRel, Rel: r}
		return out(nt)
	}
	return buildOp(o.Input, ctx, own)
}

func buildSetProps(o *SetProps, ctx *Ctx, out Sink) (func() error, error) {
	evals, err := buildPropSpecs(o.Props, ctx.E)
	if err != nil {
		return nil, err
	}
	own := func(t Tuple) (bool, error) {
		if o.Col >= len(t) {
			return false, fmt.Errorf("%w: SetProps column %d out of range", ErrBadPlan, o.Col)
		}
		props, err := evalPropSpecs(evals, ctx, t)
		if err != nil {
			return false, err
		}
		switch t[o.Col].Kind {
		case DNode:
			if err := ctx.Tx.SetNodeProps(t[o.Col].Node.ID, props); err != nil {
				return false, err
			}
		case DRel:
			if err := ctx.Tx.SetRelProps(t[o.Col].Rel.ID, props); err != nil {
				return false, err
			}
		default:
			return false, fmt.Errorf("%w: SetProps column %d is a value", ErrBadPlan, o.Col)
		}
		return out(t)
	}
	return buildOp(o.Input, ctx, own)
}

func buildDelete(o *Delete, ctx *Ctx, out Sink) (func() error, error) {
	own := func(t Tuple) (bool, error) {
		if o.Col >= len(t) {
			return false, fmt.Errorf("%w: Delete column %d out of range", ErrBadPlan, o.Col)
		}
		switch t[o.Col].Kind {
		case DNode:
			if err := ctx.Tx.DetachDeleteNode(t[o.Col].Node.ID); err != nil {
				return false, err
			}
		case DRel:
			if err := ctx.Tx.DeleteRel(t[o.Col].Rel.ID); err != nil {
				return false, err
			}
		default:
			return false, fmt.Errorf("%w: Delete column %d is a value", ErrBadPlan, o.Col)
		}
		return out(t)
	}
	return buildOp(o.Input, ctx, own)
}

// --- property specs ---

type propSpecEval struct {
	key string
	fn  evalFn
}

func buildPropSpecs(specs []PropSpec, e *core.Engine) ([]propSpecEval, error) {
	out := make([]propSpecEval, len(specs))
	for i, s := range specs {
		fn, err := buildExpr(s.Val, e)
		if err != nil {
			return nil, err
		}
		out[i] = propSpecEval{key: s.Key, fn: fn}
	}
	return out, nil
}

func evalPropSpecs(evals []propSpecEval, ctx *Ctx, t Tuple) (map[string]any, error) {
	if len(evals) == 0 {
		return nil, nil
	}
	props := make(map[string]any, len(evals))
	for _, pe := range evals {
		v, err := pe.fn(ctx, t)
		if err != nil {
			return nil, err
		}
		gv, err := ctx.E.DecodeValue(v)
		if err != nil {
			return nil, err
		}
		props[pe.key] = gv
	}
	return props, nil
}
