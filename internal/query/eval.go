package query

import (
	"fmt"

	"poseidon/internal/core"
	"poseidon/internal/storage"
)

// evalFn is a compiled-at-prepare-time expression evaluator. The
// interpreter composes these through indirect calls; the JIT backend
// instead specializes expressions straight into the pipeline body.
type evalFn func(ctx *Ctx, t Tuple) (storage.Value, error)

// predFn evaluates a boolean predicate.
type predFn func(ctx *Ctx, t Tuple) (bool, error)

func buildExpr(e Expr, eng *core.Engine) (evalFn, error) {
	switch x := e.(type) {
	case *Const:
		v, err := eng.EncodeValue(x.Val)
		if err != nil {
			return nil, err
		}
		return func(*Ctx, Tuple) (storage.Value, error) { return v, nil }, nil

	case *Param:
		name := x.Name
		return func(ctx *Ctx, _ Tuple) (storage.Value, error) {
			v, ok := ctx.Params[name]
			if !ok {
				return storage.Value{}, fmt.Errorf("query: unbound parameter $%s", name)
			}
			return v, nil
		}, nil

	case *Prop:
		ref := &codeRef{name: x.Key}
		col := x.Col
		return func(ctx *Ctx, t Tuple) (storage.Value, error) {
			if col >= len(t) {
				return storage.Value{}, fmt.Errorf("%w: prop column %d out of range", ErrBadPlan, col)
			}
			code, ok := ref.get(ctx.E)
			if !ok {
				return storage.Value{}, nil
			}
			switch t[col].Kind {
			case DNode:
				if v, ok := t[col].Node.Prop(uint32(code)); ok {
					return v, nil
				}
			case DRel:
				if v, ok := t[col].Rel.Prop(uint32(code)); ok {
					return v, nil
				}
			}
			return storage.Value{}, nil
		}, nil

	case *IDOf:
		col := x.Col
		return func(_ *Ctx, t Tuple) (storage.Value, error) {
			if col >= len(t) {
				return storage.Value{}, fmt.Errorf("%w: id column %d out of range", ErrBadPlan, col)
			}
			switch t[col].Kind {
			case DNode:
				return storage.IntValue(int64(t[col].Node.ID)), nil
			case DRel:
				return storage.IntValue(int64(t[col].Rel.ID)), nil
			default:
				return t[col].Val, nil
			}
		}, nil

	case *LabelOf:
		col := x.Col
		return func(_ *Ctx, t Tuple) (storage.Value, error) {
			if col >= len(t) {
				return storage.Value{}, fmt.Errorf("%w: label column %d out of range", ErrBadPlan, col)
			}
			switch t[col].Kind {
			case DNode:
				return storage.StringValue(uint64(t[col].Node.Rec.Label)), nil
			case DRel:
				return storage.StringValue(uint64(t[col].Rel.Rec.Label)), nil
			default:
				return storage.Value{}, nil
			}
		}, nil

	case *Cmp, *And, *Or, *Not, *HasLabel:
		pred, err := buildPred(e, eng)
		if err != nil {
			return nil, err
		}
		return func(ctx *Ctx, t Tuple) (storage.Value, error) {
			b, err := pred(ctx, t)
			if err != nil {
				return storage.Value{}, err
			}
			return storage.BoolValue(b), nil
		}, nil

	default:
		return nil, fmt.Errorf("%w: unknown expression %T", ErrBadPlan, e)
	}
}

func buildPred(e Expr, eng *core.Engine) (predFn, error) {
	switch x := e.(type) {
	case *Cmp:
		l, err := buildExpr(x.L, eng)
		if err != nil {
			return nil, err
		}
		r, err := buildExpr(x.R, eng)
		if err != nil {
			return nil, err
		}
		op := x.Op
		return func(ctx *Ctx, t Tuple) (bool, error) {
			lv, err := l(ctx, t)
			if err != nil {
				return false, err
			}
			rv, err := r(ctx, t)
			if err != nil {
				return false, err
			}
			return CompareValues(ctx.E, op, lv, rv)
		}, nil

	case *And:
		l, err := buildPred(x.L, eng)
		if err != nil {
			return nil, err
		}
		r, err := buildPred(x.R, eng)
		if err != nil {
			return nil, err
		}
		return func(ctx *Ctx, t Tuple) (bool, error) {
			lb, err := l(ctx, t)
			if err != nil || !lb {
				return false, err
			}
			return r(ctx, t)
		}, nil

	case *Or:
		l, err := buildPred(x.L, eng)
		if err != nil {
			return nil, err
		}
		r, err := buildPred(x.R, eng)
		if err != nil {
			return nil, err
		}
		return func(ctx *Ctx, t Tuple) (bool, error) {
			lb, err := l(ctx, t)
			if err != nil || lb {
				return lb, err
			}
			return r(ctx, t)
		}, nil

	case *Not:
		inner, err := buildPred(x.X, eng)
		if err != nil {
			return nil, err
		}
		return func(ctx *Ctx, t Tuple) (bool, error) {
			b, err := inner(ctx, t)
			return !b, err
		}, nil

	case *HasLabel:
		ref := &codeRef{name: x.Label}
		col := x.Col
		return func(ctx *Ctx, t Tuple) (bool, error) {
			if col >= len(t) {
				return false, fmt.Errorf("%w: hasLabel column %d out of range", ErrBadPlan, col)
			}
			code, ok := ref.get(ctx.E)
			if !ok {
				return false, nil
			}
			switch t[col].Kind {
			case DNode:
				return uint64(t[col].Node.Rec.Label) == code, nil
			case DRel:
				return uint64(t[col].Rel.Rec.Label) == code, nil
			default:
				return false, nil
			}
		}, nil

	default:
		// A bare expression used as a predicate: truthiness of its value.
		fn, err := buildExpr(e, eng)
		if err != nil {
			return nil, err
		}
		return func(ctx *Ctx, t Tuple) (bool, error) {
			v, err := fn(ctx, t)
			if err != nil {
				return false, err
			}
			return v.Type == storage.TypeBool && v.Bool(), nil
		}, nil
	}
}

// CompareValues compares two typed values under op. Numeric types are
// coerced; strings compare by dictionary code for equality and are
// decoded for ordering (codes are assigned in insertion order, not
// lexicographically).
func CompareValues(e *core.Engine, op CmpOp, l, r storage.Value) (bool, error) {
	if l.Type == storage.TypeNil || r.Type == storage.TypeNil {
		// SQL-ish semantics: nil compares equal only to nil under Eq.
		switch op {
		case Eq:
			return l.Type == r.Type, nil
		case Ne:
			return l.Type != r.Type, nil
		default:
			return false, nil
		}
	}
	c, err := orderValues(e, l, r)
	if err != nil {
		return false, err
	}
	switch op {
	case Eq:
		return c == 0, nil
	case Ne:
		return c != 0, nil
	case Lt:
		return c < 0, nil
	case Le:
		return c <= 0, nil
	case Gt:
		return c > 0, nil
	default:
		return c >= 0, nil
	}
}

func orderValues(e *core.Engine, l, r storage.Value) (int, error) {
	lt, rt := l.Type, r.Type
	// Numeric coercion.
	if (lt == storage.TypeInt || lt == storage.TypeFloat) &&
		(rt == storage.TypeInt || rt == storage.TypeFloat) {
		var lf, rf float64
		if lt == storage.TypeInt {
			lf = float64(l.Int())
		} else {
			lf = l.Float()
		}
		if rt == storage.TypeInt {
			rf = float64(r.Int())
		} else {
			rf = r.Float()
		}
		switch {
		case lf < rf:
			return -1, nil
		case lf > rf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if lt != rt {
		return 0, fmt.Errorf("query: cannot compare %v with %v", lt, rt)
	}
	switch lt {
	case storage.TypeBool:
		lb, rb := l.Bool(), r.Bool()
		switch {
		case lb == rb:
			return 0, nil
		case !lb:
			return -1, nil
		default:
			return 1, nil
		}
	case storage.TypeString:
		if l.Code() == r.Code() {
			return 0, nil
		}
		ls, err := e.Dict().Decode(l.Code())
		if err != nil {
			return 0, err
		}
		rs, err := e.Dict().Decode(r.Code())
		if err != nil {
			return 0, err
		}
		switch {
		case ls < rs:
			return -1, nil
		case ls > rs:
			return 1, nil
		default:
			return 0, nil
		}
	default:
		return 0, fmt.Errorf("query: cannot order values of type %v", lt)
	}
}
