// Package query implements the push-based query engine of §6.1: a
// graph-specific algebra (NodeScan, IndexScan, ForeachRelationship/Expand,
// Filter, Project, Join, aggregation and update operators), an
// ahead-of-time-compiled interpreter that links per-operator functions
// into a cascade, and morsel-driven parallel scans. The JIT compiler of
// package jit consumes the same algebra.
package query

import (
	"fmt"
	"strings"
)

// Dir is a traversal direction.
type Dir int

// Traversal directions.
const (
	Out Dir = iota
	In
	Both
)

func (d Dir) String() string {
	switch d {
	case Out:
		return "out"
	case In:
		return "in"
	default:
		return "both"
	}
}

// End selects a relationship endpoint for GetNode.
type End int

// Relationship endpoints.
const (
	Src End = iota
	Dst
	Other // the endpoint that is not the node in OtherCol
)

func (e End) String() string {
	switch e {
	case Src:
		return "src"
	case Dst:
		return "dst"
	default:
		return "other"
	}
}

// Op is a logical graph-algebra operator. A Plan is a tree of Ops; the
// leaf is always an access path (NodeScan, IndexScan, NodeByID or
// CreateNode).
type Op interface {
	sig(b *strings.Builder)
	child() Op // nil for access paths
}

// Plan is a graph-algebra expression tree.
type Plan struct {
	Root Op
}

// Signature returns the query identifier used as the key of the
// persistent compiled-code cache (§6.2 "a unique query identifier that
// comprises the operators' identifiers"). Parameters contribute their
// names, not their values, so one compilation serves all bindings.
func (p *Plan) Signature() string {
	var b strings.Builder
	p.Root.sig(&b)
	return b.String()
}

// HasUpdates reports whether the plan contains operators that modify the
// graph (CreateNode, CreateRel, SetProps, Delete) on any branch,
// including the build side of joins. The facade uses it to reject update
// plans on read-only entry points, whose transaction is always rolled
// back.
func (p *Plan) HasUpdates() bool {
	if p == nil || p.Root == nil {
		return false
	}
	return opHasUpdates(p.Root)
}

func opHasUpdates(op Op) bool {
	switch o := op.(type) {
	case *CreateNode, *CreateRel, *SetProps, *Delete:
		return true
	case *HashJoin:
		return opHasUpdates(o.Left) || opHasUpdates(o.Right)
	}
	if c := op.child(); c != nil {
		return opHasUpdates(c)
	}
	return false
}

// --- access paths ---

// NodeScan scans the node table, optionally restricted to one label.
type NodeScan struct {
	Label string // empty = all labels
}

func (o *NodeScan) sig(b *strings.Builder) { fmt.Fprintf(b, "NodeScan(%s)", o.Label) }
func (o *NodeScan) child() Op              { return nil }

// RelScan scans the relationship table, optionally restricted to a label.
type RelScan struct {
	Label string
}

func (o *RelScan) sig(b *strings.Builder) { fmt.Fprintf(b, "RelScan(%s)", o.Label) }
func (o *RelScan) child() Op              { return nil }

// NodeByID produces the single node whose id is bound to Param.
type NodeByID struct {
	Param string
}

func (o *NodeByID) sig(b *strings.Builder) { fmt.Fprintf(b, "NodeByID($%s)", o.Param) }
func (o *NodeByID) child() Op              { return nil }

// IndexScan looks nodes up in the (Label, Key) B+-tree index. Value is
// usually a Param or Const expression.
type IndexScan struct {
	Label string
	Key   string
	Value Expr
}

func (o *IndexScan) sig(b *strings.Builder) {
	fmt.Fprintf(b, "IndexScan(%s,%s,", o.Label, o.Key)
	o.Value.sig(b)
	b.WriteByte(')')
}
func (o *IndexScan) child() Op { return nil }

// CreateNode is the Create access path (§6.2): it creates one node and
// emits it as a single-tuple pipeline source. With a non-nil Input it
// acts as a pipeline operator instead, creating one node per input tuple
// and appending it as a new column (used by multi-create Cypher
// statements).
type CreateNode struct {
	Input Op // nil = access path
	Label string
	Props []PropSpec
}

func (o *CreateNode) sig(b *strings.Builder) {
	if o.Input != nil {
		o.Input.sig(b)
		b.WriteByte('|')
	}
	fmt.Fprintf(b, "CreateNode(%s", o.Label)
	for _, p := range o.Props {
		fmt.Fprintf(b, ",%s=", p.Key)
		p.Val.sig(b)
	}
	b.WriteByte(')')
}
func (o *CreateNode) child() Op { return o.Input }

// --- pipeline operators ---

// Expand is the paper's ForeachRelationship: for each input tuple it
// iterates the relationships of the node in column Col, pushing
// tuple+relationship. It leverages the direct offset addressability of
// the adjacency lists (DD4).
type Expand struct {
	Input    Op
	Col      int
	Dir      Dir
	RelLabel string // empty = any label
}

func (o *Expand) sig(b *strings.Builder) {
	o.Input.sig(b)
	fmt.Fprintf(b, "|Expand(%d,%s,%s)", o.Col, o.Dir, o.RelLabel)
}
func (o *Expand) child() Op { return o.Input }

// GetNode fetches a relationship endpoint, pushing tuple+node.
type GetNode struct {
	Input    Op
	RelCol   int
	End      End
	OtherCol int // used when End == Other
}

func (o *GetNode) sig(b *strings.Builder) {
	o.Input.sig(b)
	fmt.Fprintf(b, "|GetNode(%d,%s,%d)", o.RelCol, o.End, o.OtherCol)
}
func (o *GetNode) child() Op { return o.Input }

// NodeLookup is a pipeline-side index lookup: for every input tuple it
// looks up nodes with the given label whose Key property equals Value and
// pushes tuple+node per hit. It is the access pattern of the IU update
// queries, which locate several existing nodes by business id within one
// pipeline.
type NodeLookup struct {
	Input Op
	Label string
	Key   string
	Value Expr
}

func (o *NodeLookup) sig(b *strings.Builder) {
	o.Input.sig(b)
	fmt.Fprintf(b, "|NodeLookup(%s,%s,", o.Label, o.Key)
	o.Value.sig(b)
	b.WriteByte(')')
}
func (o *NodeLookup) child() Op { return o.Input }

// Filter keeps tuples for which Pred evaluates to true.
type Filter struct {
	Input Op
	Pred  Expr
}

func (o *Filter) sig(b *strings.Builder) {
	o.Input.sig(b)
	b.WriteString("|Filter(")
	o.Pred.sig(b)
	b.WriteByte(')')
}
func (o *Filter) child() Op { return o.Input }

// Project maps each tuple to a row of value expressions; it is the usual
// pipeline tail.
type Project struct {
	Input Op
	Cols  []Expr
}

func (o *Project) sig(b *strings.Builder) {
	o.Input.sig(b)
	b.WriteString("|Project(")
	for i, c := range o.Cols {
		if i > 0 {
			b.WriteByte(',')
		}
		c.sig(b)
	}
	b.WriteByte(')')
}
func (o *Project) child() Op { return o.Input }

// Limit stops the pipeline after N tuples.
type Limit struct {
	Input Op
	N     int
}

func (o *Limit) sig(b *strings.Builder) {
	o.Input.sig(b)
	fmt.Fprintf(b, "|Limit(%d)", o.N)
}
func (o *Limit) child() Op { return o.Input }

// OrderBy is a pipeline breaker: it materializes, sorts by Key, and emits
// (optionally only the first Limit tuples).
type OrderBy struct {
	Input Op
	Key   Expr
	Desc  bool
	Limit int // 0 = all
}

func (o *OrderBy) sig(b *strings.Builder) {
	o.Input.sig(b)
	b.WriteString("|OrderBy(")
	o.Key.sig(b)
	fmt.Fprintf(b, ",%v,%d)", o.Desc, o.Limit)
}
func (o *OrderBy) child() Op { return o.Input }

// Distinct removes duplicate tuples (by projected value identity).
type Distinct struct {
	Input Op
	Key   Expr
}

func (o *Distinct) sig(b *strings.Builder) {
	o.Input.sig(b)
	b.WriteString("|Distinct(")
	o.Key.sig(b)
	b.WriteByte(')')
}
func (o *Distinct) child() Op { return o.Input }

// CountAgg is a pipeline breaker emitting a single count row.
type CountAgg struct {
	Input Op
}

func (o *CountAgg) sig(b *strings.Builder) {
	o.Input.sig(b)
	b.WriteString("|Count")
}
func (o *CountAgg) child() Op { return o.Input }

// HashJoin materializes the right input keyed by RKey (§6.2: "the right
// sub-pipeline of the join is the side which will be materialized"), then
// streams the left input, emitting leftTuple+rightTuple on key equality.
type HashJoin struct {
	Left  Op
	Right Op
	LKey  Expr
	RKey  Expr
}

func (o *HashJoin) sig(b *strings.Builder) {
	b.WriteString("HashJoin[")
	o.Left.sig(b)
	b.WriteString("][")
	o.Right.sig(b)
	b.WriteString("](")
	o.LKey.sig(b)
	b.WriteByte(',')
	o.RKey.sig(b)
	b.WriteByte(')')
}
func (o *HashJoin) child() Op { return o.Left }

// --- update operators (IU queries) ---

// PropSpec assigns the result of an expression to a property key.
type PropSpec struct {
	Key string
	Val Expr
}

// CreateRel creates a relationship from the node in SrcCol to the node in
// DstCol for every input tuple, pushing tuple+relationship.
type CreateRel struct {
	Input  Op
	SrcCol int
	DstCol int
	Label  string
	Props  []PropSpec
}

func (o *CreateRel) sig(b *strings.Builder) {
	o.Input.sig(b)
	fmt.Fprintf(b, "|CreateRel(%d,%d,%s", o.SrcCol, o.DstCol, o.Label)
	for _, p := range o.Props {
		fmt.Fprintf(b, ",%s=", p.Key)
		p.Val.sig(b)
	}
	b.WriteByte(')')
}
func (o *CreateRel) child() Op { return o.Input }

// SetProps updates properties of the node or relationship in Col.
type SetProps struct {
	Input Op
	Col   int
	Props []PropSpec
}

func (o *SetProps) sig(b *strings.Builder) {
	o.Input.sig(b)
	fmt.Fprintf(b, "|SetProps(%d", o.Col)
	for _, p := range o.Props {
		fmt.Fprintf(b, ",%s=", p.Key)
		p.Val.sig(b)
	}
	b.WriteByte(')')
}
func (o *SetProps) child() Op { return o.Input }

// Delete tombstones the node (detached) or relationship in Col.
type Delete struct {
	Input Op
	Col   int
}

func (o *Delete) sig(b *strings.Builder) {
	o.Input.sig(b)
	fmt.Fprintf(b, "|Delete(%d)", o.Col)
}
func (o *Delete) child() Op { return o.Input }
