package query

import (
	"fmt"
	"strings"
)

// Expr is a scalar expression evaluated against a tuple. Expressions are
// resolved (dictionary codes bound) at prepare time and evaluated by the
// interpreter through dynamic dispatch; the JIT backend instead
// specializes them into the generated pipeline code.
type Expr interface {
	sig(b *strings.Builder)
}

// Prop reads a property of the node or relationship in column Col.
type Prop struct {
	Col int
	Key string
}

func (e *Prop) sig(b *strings.Builder) { fmt.Fprintf(b, "prop(%d,%s)", e.Col, e.Key) }

// IDOf yields the record id of the node or relationship in column Col.
type IDOf struct {
	Col int
}

func (e *IDOf) sig(b *strings.Builder) { fmt.Fprintf(b, "id(%d)", e.Col) }

// LabelOf yields the label code of the node or relationship in Col.
type LabelOf struct {
	Col int
}

func (e *LabelOf) sig(b *strings.Builder) { fmt.Fprintf(b, "label(%d)", e.Col) }

// Const is a literal value (Go int/int64/float64/bool/string).
type Const struct {
	Val any
}

func (e *Const) sig(b *strings.Builder) { fmt.Fprintf(b, "const(%v)", e.Val) }

// Param references a named query parameter bound at execution time. Its
// signature contribution is the name only, so compiled code is shared
// across bindings.
type Param struct {
	Name string
}

func (e *Param) sig(b *strings.Builder) { fmt.Fprintf(b, "$%s", e.Name) }

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	default:
		return ">="
	}
}

// Cmp compares two expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

func (e *Cmp) sig(b *strings.Builder) {
	b.WriteString("(")
	e.L.sig(b)
	b.WriteString(e.Op.String())
	e.R.sig(b)
	b.WriteString(")")
}

// And is a conjunction.
type And struct{ L, R Expr }

func (e *And) sig(b *strings.Builder) {
	b.WriteString("(")
	e.L.sig(b)
	b.WriteString(" and ")
	e.R.sig(b)
	b.WriteString(")")
}

// Or is a disjunction.
type Or struct{ L, R Expr }

func (e *Or) sig(b *strings.Builder) {
	b.WriteString("(")
	e.L.sig(b)
	b.WriteString(" or ")
	e.R.sig(b)
	b.WriteString(")")
}

// Not negates a boolean expression.
type Not struct{ X Expr }

func (e *Not) sig(b *strings.Builder) {
	b.WriteString("not(")
	e.X.sig(b)
	b.WriteString(")")
}

// HasLabel tests the label of the node or relationship in Col.
type HasLabel struct {
	Col   int
	Label string
}

func (e *HasLabel) sig(b *strings.Builder) { fmt.Fprintf(b, "hasLabel(%d,%s)", e.Col, e.Label) }
