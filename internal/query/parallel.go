package query

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"poseidon/internal/core"
	"poseidon/internal/trace"
)

// Morsel-driven parallelism (§6.1): scans are split into chunk-granular
// morsels; each worker pulls morsels from a shared counter and runs the
// streaming part of the pipeline on its morsel. Operators above the last
// pipeline breaker run single-threaded over the collected intermediate
// tuples. The same machinery powers the adaptive JIT execution (§6.2),
// which swaps the per-morsel task function once compilation finishes.

// FirstError keeps the first error reported by a pool of workers.
// atomic.Value cannot hold it directly: CompareAndSwap panics when two
// workers race with different concrete error types (write-conflict
// aborts vs wrapped index errors, say), so the error travels boxed in
// one fixed type.
type FirstError struct {
	p atomic.Pointer[firstErrorBox]
}

type firstErrorBox struct{ err error }

// Set records err if no error has been recorded yet.
func (f *FirstError) Set(err error) { f.p.CompareAndSwap(nil, &firstErrorBox{err}) }

// Pending reports whether an error has been recorded.
func (f *FirstError) Pending() bool { return f.p.Load() != nil }

// Err returns the recorded error, or nil.
func (f *FirstError) Err() error {
	if b := f.p.Load(); b != nil {
		return b.err
	}
	return nil
}

// MorselPlan is a plan split for morsel-driven execution.
type MorselPlan struct {
	// Pipeline is the streaming subtree: leaf scan up to (excluding) the
	// first pipeline breaker.
	Pipeline Op
	// Tail holds the remaining operators root-first; empty if the whole
	// plan streams.
	Tail []Op
	// Leaf is the plan's access path, a *NodeScan or *RelScan.
	Leaf Op
}

// isBreaker reports whether the operator must see all input tuples before
// emitting (a pipeline breaker in the §6.1 sense).
func isBreaker(op Op) bool {
	switch op.(type) {
	case *OrderBy, *CountAgg, *Distinct, *HashJoin:
		return true
	default:
		return false
	}
}

// hasUpdates reports whether the subtree contains update operators, which
// must not run concurrently on a shared transaction.
func hasUpdates(op Op) bool {
	for cur := op; cur != nil; cur = cur.child() {
		switch cur.(type) {
		case *CreateNode, *CreateRel, *SetProps, *Delete:
			return true
		case *HashJoin:
			return true // child() only walks the left side
		}
	}
	return false
}

// SplitForMorsels decomposes a plan for parallel execution. It returns
// ok=false when the plan cannot be parallelized: the access path is not a
// table scan, the plan contains updates, or a join.
func SplitForMorsels(p *Plan) (*MorselPlan, bool) {
	if p == nil || p.Root == nil || hasUpdates(p.Root) {
		return nil, false
	}
	var chain []Op // root first
	for cur := p.Root; cur != nil; cur = cur.child() {
		chain = append(chain, cur)
	}
	leaf := chain[len(chain)-1]
	switch leaf.(type) {
	case *NodeScan, *RelScan:
	default:
		return nil, false
	}
	// Find the breaker closest to the leaf.
	split := -1
	for i, op := range chain {
		if isBreaker(op) {
			split = i
		}
	}
	mp := &MorselPlan{Leaf: leaf}
	if split == -1 {
		mp.Pipeline = p.Root
	} else {
		mp.Pipeline = chain[split].child()
		mp.Tail = chain[:split+1]
	}
	return mp, true
}

// SplitPipeline decomposes any single-chain plan into its streaming
// pipeline and breaker tail, without the parallelizability restrictions
// of SplitForMorsels. The JIT compiler (§6.2) compiles the pipeline into
// one function and leaves breakers to the materializing tail. Plans
// containing joins return ok=false (the join build side is a separate
// pipeline).
func SplitPipeline(p *Plan) (*MorselPlan, bool) {
	if p == nil || p.Root == nil {
		return nil, false
	}
	var chain []Op
	for cur := p.Root; cur != nil; cur = cur.child() {
		if _, isJoin := cur.(*HashJoin); isJoin {
			return nil, false
		}
		chain = append(chain, cur)
	}
	split := -1
	for i, op := range chain {
		if isBreaker(op) {
			split = i
		}
	}
	mp := &MorselPlan{Leaf: chain[len(chain)-1]}
	if split == -1 {
		mp.Pipeline = p.Root
	} else {
		mp.Pipeline = chain[split].child()
		mp.Tail = chain[:split+1]
	}
	return mp, true
}

// MorselGrain is the number of record slots per morsel. Finer than a
// table chunk so even laptop-scale tables expose enough parallelism for
// the §6.1 task model (the paper pins morsels to tasks the same way).
const MorselGrain = 256

// morselsPerChunk returns how many morsels cover one chunk.
func morselsPerChunk(chunkCap uint64) uint64 {
	return (chunkCap + MorselGrain - 1) / MorselGrain
}

// MorselCount returns the number of morsels covering a table of maxID
// slots partitioned into chunks of chunkCap records. Morsels never span
// a chunk boundary, so every morsel's records live in exactly one engine
// shard (chunk ownership is chunk index mod shard count) and parallel
// scans partition along shard boundaries.
func MorselCount(maxID, chunkCap uint64) uint64 {
	return (maxID + chunkCap - 1) / chunkCap * morselsPerChunk(chunkCap)
}

// MorselRange returns the id range [from, to) covered by morsel m. The
// last morsel of each chunk is clipped to the chunk end.
func MorselRange(m, chunkCap uint64) (from, to uint64) {
	per := morselsPerChunk(chunkCap)
	ci, sub := m/per, m%per
	from = ci*chunkCap + sub*MorselGrain
	to = from + MorselGrain
	if end := (ci + 1) * chunkCap; to > end {
		to = end
	}
	return from, to
}

// --- internal operators used by the parallel machinery ---

// chunkScan is a NodeScan/RelScan restricted to one chunk; the chunk
// index is read through a pointer so a worker can reuse its compiled
// pipeline across morsels.
type chunkScan struct {
	label string
	rel   bool
	chunk *uint64
}

func (o *chunkScan) sig(b *strings.Builder) {
	fmt.Fprintf(b, "chunkScan(%s,%v)", o.label, o.rel)
}
func (o *chunkScan) child() Op { return nil }

// tupleSource replays materialized tuples into a pipeline (used to feed
// the tail operators).
type tupleSource struct {
	tuples []Tuple
}

func (o *tupleSource) sig(b *strings.Builder) { b.WriteString("tupleSource") }
func (o *tupleSource) child() Op              { return nil }

func buildChunkScan(o *chunkScan, ctx *Ctx, out Sink) (func() error, error) {
	ref := &codeRef{name: o.label}
	return func() error {
		var labelCode uint32
		if o.label != "" {
			code, ok := ref.get(ctx.E)
			if !ok {
				return nil
			}
			labelCode = uint32(code)
		}
		if o.rel {
			from, to := MorselRange(*o.chunk, ctx.E.Rels().ChunkCap())
			it := ctx.Tx.NewRelRangeIter(from, to, labelCode)
			for {
				ok, err := it.Next()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				cont, err := out(Tuple{{Kind: DRel, Rel: it.Rel()}})
				if err != nil || !cont {
					return err
				}
			}
		}
		from, to := MorselRange(*o.chunk, ctx.E.Nodes().ChunkCap())
		it := ctx.Tx.NewNodeRangeIter(from, to, labelCode)
		for {
			ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			cont, err := out(Tuple{{Kind: DNode, Node: it.Node()}})
			if err != nil || !cont {
				return err
			}
		}
	}, nil
}

func buildTupleSource(o *tupleSource, ctx *Ctx, out Sink) (func() error, error) {
	return func() error {
		for i, t := range o.tuples {
			if i&1023 == 0 {
				if err := ctx.err(); err != nil {
					return err
				}
			}
			cont, err := out(t)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		return nil
	}, nil
}

// CloneWithInput shallow-copies a pipeline operator with a new input.
func CloneWithInput(op Op, in Op) (Op, error) {
	switch o := op.(type) {
	case *Expand:
		c := *o
		c.Input = in
		return &c, nil
	case *GetNode:
		c := *o
		c.Input = in
		return &c, nil
	case *NodeLookup:
		c := *o
		c.Input = in
		return &c, nil
	case *CreateNode:
		c := *o
		c.Input = in
		return &c, nil
	case *Filter:
		c := *o
		c.Input = in
		return &c, nil
	case *Project:
		c := *o
		c.Input = in
		return &c, nil
	case *Limit:
		c := *o
		c.Input = in
		return &c, nil
	case *OrderBy:
		c := *o
		c.Input = in
		return &c, nil
	case *Distinct:
		c := *o
		c.Input = in
		return &c, nil
	case *CountAgg:
		c := *o
		c.Input = in
		return &c, nil
	case *CreateRel:
		c := *o
		c.Input = in
		return &c, nil
	case *SetProps:
		c := *o
		c.Input = in
		return &c, nil
	case *Delete:
		c := *o
		c.Input = in
		return &c, nil
	default:
		return nil, fmt.Errorf("%w: cannot re-root %T", ErrBadPlan, op)
	}
}

// rebuildOnLeaf clones the subtree rooted at root, substituting newLeaf
// for its access path.
func rebuildOnLeaf(root Op, newLeaf Op) (Op, error) {
	if root.child() == nil {
		return newLeaf, nil
	}
	in, err := rebuildOnLeaf(root.child(), newLeaf)
	if err != nil {
		return nil, err
	}
	return CloneWithInput(root, in)
}

// PipelineRunner builds an interpreter instance of the morsel pipeline
// for one worker. The returned run function executes the pipeline on the
// chunk currently stored in *chunk.
func (mp *MorselPlan) PipelineRunner(ctx *Ctx, chunk *uint64, out Sink) (func() error, error) {
	leaf := &chunkScan{chunk: chunk}
	switch l := mp.Leaf.(type) {
	case *NodeScan:
		leaf.label = l.Label
	case *RelScan:
		leaf.label = l.Label
		leaf.rel = true
	default:
		return nil, fmt.Errorf("%w: unsupported morsel leaf %T", ErrBadPlan, mp.Leaf)
	}
	root, err := rebuildOnLeaf(mp.Pipeline, leaf)
	if err != nil {
		return nil, err
	}
	return buildOp(root, ctx, out)
}

// RunTail executes the tail operators over materialized tuples.
func (mp *MorselPlan) RunTail(ctx *Ctx, tuples []Tuple, emit func(Row) bool) error {
	terminal := func(t Tuple) (bool, error) {
		if err := ctx.err(); err != nil {
			return false, err
		}
		return emit(tupleToRow(t)), nil
	}
	if len(mp.Tail) == 0 {
		for _, t := range tuples {
			if cont, err := terminal(t); err != nil || !cont {
				return err
			}
		}
		return nil
	}
	// Rebuild only the tail chain (root-first in mp.Tail) over the
	// materialized tuples; the pipeline below it already ran.
	root := Op(&tupleSource{tuples: tuples})
	for i := len(mp.Tail) - 1; i >= 0; i-- {
		var err error
		root, err = CloneWithInput(mp.Tail[i], root)
		if err != nil {
			return err
		}
	}
	run, err := buildOp(root, ctx, terminal)
	if err != nil {
		return err
	}
	return run()
}

// RunParallel executes the plan with morsel-driven parallelism using the
// given number of workers (0 = GOMAXPROCS). Plans that cannot be
// parallelized fall back to single-threaded interpretation. Result order
// is nondeterministic across morsels.
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (pr *Prepared) RunParallel(tx *core.Tx, params Params, workers int, emit func(Row) bool) error {
	return pr.RunParallelCtx(context.Background(), tx, params, workers, emit)
}

// RunParallelCtx is RunParallel with a cancellation context: workers stop
// claiming morsels once the context is cancelled, the in-flight morsels
// drain (the shared transaction observes the context and aborts), every
// worker goroutine exits, and the call returns ctx.Err().
func (pr *Prepared) RunParallelCtx(cctx context.Context, tx *core.Tx, params Params, workers int, emit func(Row) bool) error {
	mp, ok := SplitForMorsels(pr.Plan)
	if !ok {
		return pr.RunCtx(cctx, tx, params, emit)
	}
	if cctx == nil {
		//poseidonlint:ignore ctx-threading nil-ctx compatibility guard for legacy callers
		cctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bound, err := BindParams(pr.E, params)
	if err != nil {
		return err
	}
	prev := tx.WithContext(cctx)
	defer tx.WithContext(prev)
	ctx := &Ctx{E: pr.E, Tx: tx, Params: bound, Context: cctx}

	var nchunks uint64
	if _, isRel := mp.Leaf.(*RelScan); isRel {
		nchunks = MorselCount(pr.E.Rels().MaxID(), pr.E.Rels().ChunkCap())
	} else {
		nchunks = MorselCount(pr.E.Nodes().MaxID(), pr.E.Nodes().ChunkCap())
	}

	var mu sync.Mutex
	var collected []Tuple
	stopped := false
	streaming := len(mp.Tail) == 0
	collect := func(t Tuple) (bool, error) {
		mu.Lock()
		defer mu.Unlock()
		if stopped {
			return false, nil
		}
		if streaming {
			if !emit(tupleToRow(t)) {
				stopped = true
				return false, nil
			}
			return true, nil
		}
		collected = append(collected, append(Tuple(nil), t...))
		return true, nil
	}

	// With tracing on, each worker gets its own span under the caller's
	// query.parallel span, carrying the number of morsels it claimed —
	// the skew between workers is the load-balance signal. parent is nil
	// with tracing off and every span call no-ops.
	parent := trace.FromContext(cctx)
	var next atomic.Uint64
	var firstErr FirstError
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wsp := parent.Child("query.worker", trace.KindExec)
			wsp.SetAttr("worker", int64(w))
			var morsels int64
			defer func() {
				wsp.SetAttr("morsels", morsels)
				wsp.End()
			}()
			var chunk uint64
			run, err := mp.PipelineRunner(ctx, &chunk, collect)
			if err != nil {
				wsp.SetError(err)
				firstErr.Set(err)
				return
			}
			for {
				c := next.Add(1) - 1
				if c >= nchunks || firstErr.Pending() || cctx.Err() != nil {
					return
				}
				mu.Lock()
				done := stopped
				mu.Unlock()
				if done {
					return
				}
				chunk = c
				morsels++
				if err := run(); err != nil {
					wsp.SetError(err)
					firstErr.Set(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Cancellation wins over secondary errors (a worker racing the abort
	// may surface ErrTxDone first).
	if err := cctx.Err(); err != nil {
		return err
	}
	if err := firstErr.Err(); err != nil {
		return err
	}
	if streaming {
		return nil
	}
	return mp.RunTail(ctx, collected, emit)
}
