package query

import (
	"errors"
	"sort"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/index"
	"poseidon/internal/storage"
)

// testGraph builds a small social graph:
//
//	persons p0..p4 (Person, name=person<i>, age=20+i)
//	posts   q0..q2 (Post, content=post<i>) authored by p0,p1,p2 (hasCreator)
//	knows:  p0->p1, p1->p2, p2->p3, p3->p4, p0->p2
//	likes:  p3 likes q0, p4 likes q0
func testGraph(t *testing.T, mode core.Mode) (*core.Engine, []uint64, []uint64) {
	t.Helper()
	e, err := core.Open(core.Config{Mode: mode, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	bl := e.NewBulkLoader()
	var persons, posts []uint64
	for i := 0; i < 5; i++ {
		id, err := bl.AddNode("Person", map[string]any{
			"name": "person" + string(rune('0'+i)),
			"age":  int64(20 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		persons = append(persons, id)
	}
	for i := 0; i < 3; i++ {
		id, err := bl.AddNode("Post", map[string]any{
			"content": "post" + string(rune('0'+i)),
		})
		if err != nil {
			t.Fatal(err)
		}
		posts = append(posts, id)
	}
	knows := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}}
	for _, k := range knows {
		if _, err := bl.AddRel(persons[k[0]], persons[k[1]], "knows", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := bl.AddRel(posts[i], persons[i], "hasCreator", nil); err != nil {
			t.Fatal(err)
		}
	}
	bl.AddRel(persons[3], posts[0], "likes", nil)
	bl.AddRel(persons[4], posts[0], "likes", nil)
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	return e, persons, posts
}

func runPlan(t *testing.T, e *core.Engine, p *Plan, params Params) []Row {
	t.Helper()
	pr, err := Prepare(e, p)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Abort()
	rows, err := pr.Collect(tx, params)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func intsOf(rows []Row, col int) []int64 {
	out := make([]int64, len(rows))
	for i, r := range rows {
		out[i] = r[col].Int()
	}
	return out
}

func TestNodeScanWithLabel(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	rows := runPlan(t, e, &Plan{Root: &NodeScan{Label: "Person"}}, nil)
	if len(rows) != len(persons) {
		t.Fatalf("scanned %d persons, want %d", len(rows), len(persons))
	}
	rows = runPlan(t, e, &Plan{Root: &NodeScan{}}, nil)
	if len(rows) != 8 {
		t.Fatalf("scanned %d nodes, want 8", len(rows))
	}
	rows = runPlan(t, e, &Plan{Root: &NodeScan{Label: "Ghost"}}, nil)
	if len(rows) != 0 {
		t.Fatalf("unknown label matched %d nodes", len(rows))
	}
}

func TestFilterAndProject(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	p := &Plan{Root: &Project{
		Input: &Filter{
			Input: &NodeScan{Label: "Person"},
			Pred:  &Cmp{Op: Ge, L: &Prop{Col: 0, Key: "age"}, R: &Const{Val: 22}},
		},
		Cols: []Expr{&Prop{Col: 0, Key: "age"}},
	}}
	rows := runPlan(t, e, p, nil)
	ages := intsOf(rows, 0)
	sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
	want := []int64{22, 23, 24}
	if len(ages) != 3 || ages[0] != want[0] || ages[2] != want[2] {
		t.Errorf("ages = %v, want %v", ages, want)
	}
}

func TestParamFilter(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	p := &Plan{Root: &Project{
		Input: &Filter{
			Input: &NodeScan{Label: "Person"},
			Pred:  &Cmp{Op: Eq, L: &Prop{Col: 0, Key: "name"}, R: &Param{Name: "n"}},
		},
		Cols: []Expr{&Prop{Col: 0, Key: "age"}},
	}}
	rows := runPlan(t, e, p, Params{"n": "person2"})
	if len(rows) != 1 || rows[0][0].Int() != 22 {
		t.Errorf("rows = %v", rows)
	}
	// Same prepared plan, different binding.
	rows = runPlan(t, e, p, Params{"n": "person4"})
	if len(rows) != 1 || rows[0][0].Int() != 24 {
		t.Errorf("rows = %v", rows)
	}
}

func TestExpandTraversal(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	// Friends of p0: expand knows outgoing, get destination node names.
	p := &Plan{Root: &Project{
		Input: &GetNode{
			Input:  &Expand{Input: &NodeByID{Param: "id"}, Col: 0, Dir: Out, RelLabel: "knows"},
			RelCol: 1, End: Dst,
		},
		Cols: []Expr{&Prop{Col: 2, Key: "age"}},
	}}
	rows := runPlan(t, e, p, Params{"id": int64(persons[0])})
	ages := intsOf(rows, 0)
	sort.Slice(ages, func(i, j int) bool { return ages[i] < ages[j] })
	if len(ages) != 2 || ages[0] != 21 || ages[1] != 22 {
		t.Errorf("friend ages = %v, want [21 22]", ages)
	}
}

func TestExpandIncomingAndBoth(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	in := &Plan{Root: &Expand{Input: &NodeByID{Param: "id"}, Col: 0, Dir: In, RelLabel: "knows"}}
	rows := runPlan(t, e, in, Params{"id": int64(persons[2])})
	if len(rows) != 2 { // p1->p2 and p0->p2
		t.Errorf("incoming knows of p2 = %d, want 2", len(rows))
	}
	both := &Plan{Root: &Expand{Input: &NodeByID{Param: "id"}, Col: 0, Dir: Both, RelLabel: "knows"}}
	rows = runPlan(t, e, both, Params{"id": int64(persons[2])})
	if len(rows) != 3 { // + p2->p3
		t.Errorf("both-direction knows of p2 = %d, want 3", len(rows))
	}
}

func TestTwoHopTraversal(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	// Friends-of-friends of p0 (directed): p0->p1->p2, p0->p2->p3.
	p := &Plan{Root: &Project{
		Input: &GetNode{
			Input: &Expand{
				Input: &GetNode{
					Input:  &Expand{Input: &NodeByID{Param: "id"}, Col: 0, Dir: Out, RelLabel: "knows"},
					RelCol: 1, End: Dst,
				},
				Col: 2, Dir: Out, RelLabel: "knows",
			},
			RelCol: 3, End: Dst,
		},
		Cols: []Expr{&IDOf{Col: 4}},
	}}
	rows := runPlan(t, e, p, Params{"id": int64(persons[0])})
	got := intsOf(rows, 0)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int64{int64(persons[2]), int64(persons[3])}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("fof = %v, want %v", got, want)
	}
}

func TestOrderByLimitDistinctCount(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	base := &NodeScan{Label: "Person"}
	p := &Plan{Root: &Project{
		Input: &OrderBy{Input: base, Key: &Prop{Col: 0, Key: "age"}, Desc: true, Limit: 3},
		Cols:  []Expr{&Prop{Col: 0, Key: "age"}},
	}}
	rows := runPlan(t, e, p, nil)
	got := intsOf(rows, 0)
	if len(got) != 3 || got[0] != 24 || got[1] != 23 || got[2] != 22 {
		t.Errorf("order by desc limit 3 = %v", got)
	}

	cnt := &Plan{Root: &CountAgg{Input: &NodeScan{Label: "Post"}}}
	rows = runPlan(t, e, cnt, nil)
	if len(rows) != 1 || rows[0][0].Int() != 3 {
		t.Errorf("count = %v", rows)
	}

	lim := &Plan{Root: &Limit{Input: &NodeScan{}, N: 4}}
	rows = runPlan(t, e, lim, nil)
	if len(rows) != 4 {
		t.Errorf("limit returned %d rows", len(rows))
	}

	dst := &Plan{Root: &Distinct{Input: &NodeScan{Label: "Person"}, Key: &LabelOf{Col: 0}}}
	rows = runPlan(t, e, dst, nil)
	if len(rows) != 1 {
		t.Errorf("distinct labels = %d rows, want 1", len(rows))
	}
}

func TestHashJoin(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	// Join persons with persons on equal age (self-join: 5 matches).
	p := &Plan{Root: &HashJoin{
		Left:  &NodeScan{Label: "Person"},
		Right: &NodeScan{Label: "Person"},
		LKey:  &Prop{Col: 0, Key: "age"},
		RKey:  &Prop{Col: 0, Key: "age"},
	}}
	rows := runPlan(t, e, p, nil)
	if len(rows) != 5 {
		t.Errorf("self equi-join = %d rows, want 5", len(rows))
	}
}

func TestIndexScanPlan(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	if err := e.CreateIndex("Person", "name", index.Volatile); err != nil {
		t.Fatal(err)
	}
	p := &Plan{Root: &Project{
		Input: &IndexScan{Label: "Person", Key: "name", Value: &Param{Name: "n"}},
		Cols:  []Expr{&IDOf{Col: 0}},
	}}
	rows := runPlan(t, e, p, Params{"n": "person3"})
	if len(rows) != 1 || rows[0][0].Int() != int64(persons[3]) {
		t.Errorf("index scan = %v, want [%d]", rows, persons[3])
	}
	// Missing index errors.
	bad := &Plan{Root: &IndexScan{Label: "Person", Key: "age", Value: &Const{Val: 21}}}
	pr, _ := Prepare(e, bad)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := pr.Collect(tx, nil); err == nil {
		t.Error("index scan without index succeeded")
	}
}

func TestUpdatePlans(t *testing.T) {
	e, persons, posts := testGraph(t, core.DRAM)
	// IU-style: create a comment node, link it to an author and a post.
	create := &Plan{Root: &CreateRel{
		Input: &GetNode{
			Input: &CreateRel{
				Input: &HashJoin{
					Left:  &NodeByID{Param: "author"},
					Right: &NodeByID{Param: "post"},
					LKey:  &Const{Val: 1},
					RKey:  &Const{Val: 1},
				},
				SrcCol: 0, DstCol: 1, Label: "probe",
			},
			RelCol: 2, End: Dst,
		},
		SrcCol: 3, DstCol: 0, Label: "probe2",
	}}
	_ = create // structural complexity exercised below with a simpler plan

	p := &Plan{Root: &SetProps{
		Input: &NodeByID{Param: "id"},
		Col:   0,
		Props: []PropSpec{{Key: "age", Val: &Const{Val: 99}}},
	}}
	pr, err := Prepare(e, p)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	if _, err := pr.Collect(tx, Params{"id": int64(persons[0])}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	check := &Plan{Root: &Project{Input: &NodeByID{Param: "id"}, Cols: []Expr{&Prop{Col: 0, Key: "age"}}}}
	rows := runPlan(t, e, check, Params{"id": int64(persons[0])})
	if rows[0][0].Int() != 99 {
		t.Errorf("age after update = %v", rows[0][0].Int())
	}

	// CreateNode access path + CreateRel operator.
	cn := &Plan{Root: &CreateRel{
		Input: &GetNode{
			Input:  &Expand{Input: &CreateNode{Label: "Comment", Props: []PropSpec{{Key: "text", Val: &Param{Name: "t"}}}}, Col: 0, Dir: Out},
			RelCol: 1, End: Dst,
		},
		SrcCol: 0, DstCol: 2, Label: "replyOf",
	}}
	_ = cn // a Comment has no rels yet; Expand yields nothing — use direct plan:
	cn2 := &Plan{Root: &CreateNode{Label: "Comment", Props: []PropSpec{{Key: "text", Val: &Param{Name: "t"}}}}}
	pr2, _ := Prepare(e, cn2)
	tx2 := e.Begin()
	rows2, err := pr2.Collect(tx2, Params{"t": "hello"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 1 {
		t.Fatalf("create emitted %d rows", len(rows2))
	}

	// Delete via plan.
	delPlan := &Plan{Root: &Delete{Input: &NodeByID{Param: "id"}, Col: 0}}
	pr3, _ := Prepare(e, delPlan)
	tx3 := e.Begin()
	if _, err := pr3.Collect(tx3, Params{"id": int64(posts[2])}); err != nil {
		t.Fatal(err)
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
	rows = runPlan(t, e, &Plan{Root: &CountAgg{Input: &NodeScan{Label: "Post"}}}, nil)
	if rows[0][0].Int() != 2 {
		t.Errorf("posts after delete = %d, want 2", rows[0][0].Int())
	}
}

func TestPlanSignatureStability(t *testing.T) {
	p1 := &Plan{Root: &Filter{
		Input: &NodeScan{Label: "Person"},
		Pred:  &Cmp{Op: Eq, L: &Prop{Col: 0, Key: "name"}, R: &Param{Name: "n"}},
	}}
	p2 := &Plan{Root: &Filter{
		Input: &NodeScan{Label: "Person"},
		Pred:  &Cmp{Op: Eq, L: &Prop{Col: 0, Key: "name"}, R: &Param{Name: "n"}},
	}}
	if p1.Signature() != p2.Signature() {
		t.Error("identical plans have different signatures")
	}
	p3 := &Plan{Root: &Filter{
		Input: &NodeScan{Label: "Post"},
		Pred:  &Cmp{Op: Eq, L: &Prop{Col: 0, Key: "name"}, R: &Param{Name: "n"}},
	}}
	if p1.Signature() == p3.Signature() {
		t.Error("different plans share a signature")
	}
}

func TestCompareValuesMatrix(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	iv := func(v int64) storage.Value { return storage.IntValue(v) }
	fv := func(v float64) storage.Value { return storage.FloatValue(v) }
	cases := []struct {
		op   CmpOp
		l, r storage.Value
		want bool
	}{
		{Eq, iv(1), iv(1), true},
		{Ne, iv(1), iv(2), true},
		{Lt, iv(-5), iv(3), true},
		{Ge, iv(3), iv(3), true},
		{Lt, iv(1), fv(1.5), true}, // numeric coercion
		{Gt, fv(2.5), iv(2), true},
		{Eq, storage.BoolValue(true), storage.BoolValue(true), true},
		{Lt, storage.BoolValue(false), storage.BoolValue(true), true},
		{Eq, storage.Value{}, storage.Value{}, true}, // nil = nil
		{Lt, storage.Value{}, iv(1), false},          // nil never orders
	}
	for i, c := range cases {
		got, err := CompareValues(e, c.op, c.l, c.r)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != c.want {
			t.Errorf("case %d: %v %v %v = %v, want %v", i, c.l, c.op, c.r, got, c.want)
		}
	}
	// String ordering decodes through the dictionary.
	a, _ := e.EncodeValue("apple")
	b, _ := e.EncodeValue("banana")
	if got, _ := CompareValues(e, Lt, a, b); !got {
		t.Error("apple < banana failed")
	}
	if got, _ := CompareValues(e, Eq, a, a); !got {
		t.Error("apple == apple failed")
	}
	// Incomparable types error.
	if _, err := CompareValues(e, Lt, a, iv(1)); err == nil {
		t.Error("string < int did not error")
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	e, _, _ := testGraph(t, core.PMem)
	// Grow the graph so multiple chunks exist.
	bl := e.NewBulkLoader()
	for i := 0; i < 3000; i++ {
		if _, err := bl.AddNode("Filler", map[string]any{"n": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	p := &Plan{Root: &Project{
		Input: &Filter{
			Input: &NodeScan{Label: "Filler"},
			Pred:  &Cmp{Op: Lt, L: &Prop{Col: 0, Key: "n"}, R: &Const{Val: 100}},
		},
		Cols: []Expr{&Prop{Col: 0, Key: "n"}},
	}}
	pr, err := Prepare(e, p)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Abort()
	seq, err := pr.Collect(tx, nil)
	if err != nil {
		t.Fatal(err)
	}
	var par []Row
	if err := pr.RunParallel(tx, nil, 4, func(r Row) bool { par = append(par, r); return true }); err != nil {
		t.Fatal(err)
	}
	if len(seq) != 100 || len(par) != len(seq) {
		t.Fatalf("seq=%d par=%d, want 100", len(seq), len(par))
	}
	sortRows := func(rows []Row) {
		sort.Slice(rows, func(i, j int) bool { return rows[i][0].Int() < rows[j][0].Int() })
	}
	sortRows(seq)
	sortRows(par)
	for i := range seq {
		if seq[i][0] != par[i][0] {
			t.Fatalf("row %d differs: %v vs %v", i, seq[i], par[i])
		}
	}
}

func TestRunParallelWithBreakerTail(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	bl := e.NewBulkLoader()
	for i := 0; i < 2000; i++ {
		bl.AddNode("Filler", map[string]any{"n": int64(i)})
	}
	if err := bl.Finish(); err != nil {
		t.Fatal(err)
	}
	p := &Plan{Root: &Project{
		Input: &OrderBy{
			Input: &NodeScan{Label: "Filler"},
			Key:   &Prop{Col: 0, Key: "n"},
			Desc:  true, Limit: 5,
		},
		Cols: []Expr{&Prop{Col: 0, Key: "n"}},
	}}
	pr, _ := Prepare(e, p)
	tx := e.Begin()
	defer tx.Abort()
	var rows []Row
	if err := pr.RunParallel(tx, nil, 4, func(r Row) bool { rows = append(rows, r); return true }); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0][0].Int() != 1999 || rows[4][0].Int() != 1995 {
		t.Errorf("parallel order-by tail = %v", rows)
	}
}

func TestRunParallelFallsBackForUpdates(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	p := &Plan{Root: &SetProps{
		Input: &NodeByID{Param: "id"},
		Col:   0,
		Props: []PropSpec{{Key: "age", Val: &Const{Val: 50}}},
	}}
	if _, ok := SplitForMorsels(p); ok {
		t.Error("update plan reported parallelizable")
	}
	pr, _ := Prepare(e, p)
	tx := e.Begin()
	if err := pr.RunParallel(tx, Params{"id": int64(persons[1])}, 4, func(Row) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestUnboundParamErrors(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	p := &Plan{Root: &NodeByID{Param: "missing"}}
	pr, _ := Prepare(e, p)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := pr.Collect(tx, nil); err == nil {
		t.Error("unbound parameter did not error")
	}
}

func TestBadPlanErrors(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	if _, err := Prepare(e, nil); !errors.Is(err, ErrBadPlan) {
		t.Errorf("Prepare(nil) = %v", err)
	}
	// Expand over a non-node column.
	p := &Plan{Root: &Expand{Input: &RelScan{}, Col: 0, Dir: Out}}
	pr, _ := Prepare(e, p)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := pr.Collect(tx, nil); !errors.Is(err, ErrBadPlan) {
		t.Errorf("Expand over rel column = %v, want ErrBadPlan", err)
	}
}
