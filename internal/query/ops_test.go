package query

import (
	"errors"
	"testing"

	"poseidon/internal/core"
	"poseidon/internal/index"
	"poseidon/internal/storage"
)

func TestNodeLookupOperator(t *testing.T) {
	e, persons, posts := testGraph(t, core.DRAM)
	if err := e.CreateIndex("Post", "content", index.Volatile); err != nil {
		t.Fatal(err)
	}
	// For each person (via id scan), look up post by content and link.
	p := &Plan{Root: &Project{
		Input: &NodeLookup{
			Input: &NodeByID{Param: "person"},
			Label: "Post", Key: "content", Value: &Param{Name: "c"},
		},
		Cols: []Expr{&IDOf{Col: 0}, &IDOf{Col: 1}},
	}}
	rows := runPlan(t, e, p, Params{"person": int64(persons[0]), "c": "post1"})
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if uint64(rows[0][0].Int()) != persons[0] || uint64(rows[0][1].Int()) != posts[1] {
		t.Errorf("row = %v, want [%d %d]", rows[0], persons[0], posts[1])
	}
	// Missing value: pipeline emits nothing but does not error.
	rows = runPlan(t, e, p, Params{"person": int64(persons[0]), "c": "nope"})
	if len(rows) != 0 {
		t.Errorf("missing value matched %d rows", len(rows))
	}
	// Missing index: error.
	bad := &Plan{Root: &NodeLookup{Input: &NodeByID{Param: "person"}, Label: "Post", Key: "length", Value: &Const{Val: 1}}}
	pr, _ := Prepare(e, bad)
	tx := e.Begin()
	defer tx.Abort()
	if _, err := pr.Collect(tx, Params{"person": int64(persons[0])}); err == nil {
		t.Error("NodeLookup without index succeeded")
	}
}

func TestCreateRelOperatorInQueryPackage(t *testing.T) {
	e, persons, posts := testGraph(t, core.DRAM)
	if err := e.CreateIndex("Person", "name", index.Volatile); err != nil {
		t.Fatal(err)
	}
	relsBefore := func() uint64 { return e.RelCount() }()
	p := &Plan{Root: &CreateRel{
		Input: &NodeLookup{
			Input: &IndexScan{Label: "Person", Key: "name", Value: &Param{Name: "who"}},
			Label: "Person", Key: "name", Value: &Param{Name: "whom"},
		},
		SrcCol: 0, DstCol: 1, Label: "follows",
		Props: []PropSpec{{Key: "since", Val: &Const{Val: 2024}}},
	}}
	pr, err := Prepare(e, p)
	if err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	rows, err := pr.Collect(tx, Params{"who": "person0", "whom": "person4"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("create-rel emitted %d rows", len(rows))
	}
	if e.RelCount() != relsBefore+1 {
		t.Errorf("rel count = %d, want %d", e.RelCount(), relsBefore+1)
	}
	// The new edge is traversable with its property.
	check := &Plan{Root: &Project{
		Input: &Expand{Input: &NodeByID{Param: "id"}, Col: 0, Dir: Out, RelLabel: "follows"},
		Cols:  []Expr{&Prop{Col: 1, Key: "since"}},
	}}
	rows = runPlan(t, e, check, Params{"id": int64(persons[0])})
	if len(rows) != 1 || rows[0][0].Int() != 2024 {
		t.Errorf("follows check = %v", rows)
	}
	_ = posts
}

func TestHasLabelAndLabelOf(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	p := &Plan{Root: &CountAgg{Input: &Filter{
		Input: &NodeScan{},
		Pred:  &HasLabel{Col: 0, Label: "Post"},
	}}}
	rows := runPlan(t, e, p, nil)
	if rows[0][0].Int() != 3 {
		t.Errorf("hasLabel(Post) count = %d, want 3", rows[0][0].Int())
	}
	// Unknown label matches nothing.
	p2 := &Plan{Root: &CountAgg{Input: &Filter{
		Input: &NodeScan{},
		Pred:  &HasLabel{Col: 0, Label: "Ghost"},
	}}}
	rows = runPlan(t, e, p2, nil)
	if rows[0][0].Int() != 0 {
		t.Errorf("hasLabel(Ghost) count = %d", rows[0][0].Int())
	}
	// LabelOf projects the label code; Distinct over it groups labels.
	p3 := &Plan{Root: &CountAgg{Input: &Distinct{
		Input: &NodeScan{},
		Key:   &LabelOf{Col: 0},
	}}}
	rows = runPlan(t, e, p3, nil)
	if rows[0][0].Int() != 2 { // Person, Post
		t.Errorf("distinct labels = %d, want 2", rows[0][0].Int())
	}
	// HasLabel on a relationship column.
	p4 := &Plan{Root: &CountAgg{Input: &Filter{
		Input: &RelScan{},
		Pred:  &HasLabel{Col: 0, Label: "likes"},
	}}}
	rows = runPlan(t, e, p4, nil)
	if rows[0][0].Int() != 2 {
		t.Errorf("likes rels = %d, want 2", rows[0][0].Int())
	}
}

func TestBareExprAsPredicate(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	// A boolean property used directly as a Filter predicate (the
	// buildPred fallback path). Persons have no "flag" prop: add some.
	tx := e.Begin()
	id, err := tx.CreateNode("Flagged", map[string]any{"flag": true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateNode("Flagged", map[string]any{"flag": false}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	p := &Plan{Root: &Project{
		Input: &Filter{Input: &NodeScan{Label: "Flagged"}, Pred: &Prop{Col: 0, Key: "flag"}},
		Cols:  []Expr{&IDOf{Col: 0}},
	}}
	rows := runPlan(t, e, p, nil)
	if len(rows) != 1 || uint64(rows[0][0].Int()) != id {
		t.Errorf("truthy filter = %v, want [[%d]]", rows, id)
	}
}

func TestGetNodeOtherEnd(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	// Both-direction expand + Other endpoint resolution: friends of p2 in
	// either direction.
	p := &Plan{Root: &Project{
		Input: &GetNode{
			Input:  &Expand{Input: &NodeByID{Param: "id"}, Col: 0, Dir: Both, RelLabel: "knows"},
			RelCol: 1, End: Other, OtherCol: 0,
		},
		Cols: []Expr{&Prop{Col: 2, Key: "name"}},
	}}
	rows := runPlan(t, e, p, Params{"id": int64(persons[2])})
	names := map[string]bool{}
	for _, r := range rows {
		s, _ := e.Dict().Decode(r[0].Code())
		names[s] = true
	}
	if len(rows) != 3 || !names["person0"] || !names["person1"] || !names["person3"] {
		t.Errorf("other-end friends = %v", names)
	}
}

func TestDeleteRelViaPlan(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	relsBefore := e.RelCount()
	// Delete all outgoing knows of person0.
	p := &Plan{Root: &Delete{
		Input: &Expand{Input: &NodeByID{Param: "id"}, Col: 0, Dir: Out, RelLabel: "knows"},
		Col:   1,
	}}
	pr, _ := Prepare(e, p)
	tx := e.Begin()
	if _, err := pr.Collect(tx, Params{"id": int64(persons[0])}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.RelCount() != relsBefore-2 {
		t.Errorf("rels = %d, want %d", e.RelCount(), relsBefore-2)
	}
}

func TestSetPropsOnRelColumn(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	p := &Plan{Root: &SetProps{
		Input: &Expand{Input: &NodeByID{Param: "id"}, Col: 0, Dir: Out, RelLabel: "knows"},
		Col:   1,
		Props: []PropSpec{{Key: "weight", Val: &Const{Val: 9}}},
	}}
	pr, _ := Prepare(e, p)
	tx := e.Begin()
	if _, err := pr.Collect(tx, Params{"id": int64(persons[1])}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	check := &Plan{Root: &Project{
		Input: &Expand{Input: &NodeByID{Param: "id"}, Col: 0, Dir: Out, RelLabel: "knows"},
		Cols:  []Expr{&Prop{Col: 1, Key: "weight"}},
	}}
	rows := runPlan(t, e, check, Params{"id": int64(persons[1])})
	for _, r := range rows {
		if r[0].Int() != 9 {
			t.Errorf("rel weight = %v", r[0])
		}
	}
}

func TestToRowConversion(t *testing.T) {
	e, persons, _ := testGraph(t, core.DRAM)
	tx := e.Begin()
	defer tx.Abort()
	snap, err := tx.GetNode(persons[0])
	if err != nil {
		t.Fatal(err)
	}
	tup := Tuple{
		{Kind: DNode, Node: snap},
		{Kind: DVal, Val: storage.IntValue(7)},
	}
	row := ToRow(tup)
	if uint64(row[0].Int()) != persons[0] || row[1].Int() != 7 {
		t.Errorf("ToRow = %v", row)
	}
}

func TestSignatureCoversEveryOperator(t *testing.T) {
	// Smoke: every operator's sig() must be reachable and distinct enough
	// that structurally different plans differ.
	plans := []*Plan{
		{Root: &RelScan{Label: "x"}},
		{Root: &NodeByID{Param: "p"}},
		{Root: &CreateNode{Label: "L", Props: []PropSpec{{Key: "k", Val: &Const{Val: 1}}}}},
		{Root: &NodeLookup{Input: &NodeScan{}, Label: "L", Key: "k", Value: &Param{Name: "v"}}},
		{Root: &Distinct{Input: &NodeScan{}, Key: &LabelOf{Col: 0}}},
		{Root: &HashJoin{Left: &NodeScan{}, Right: &RelScan{}, LKey: &IDOf{Col: 0}, RKey: &IDOf{Col: 0}}},
		{Root: &SetProps{Input: &NodeScan{}, Col: 0, Props: []PropSpec{{Key: "k", Val: &Param{Name: "v"}}}}},
		{Root: &Delete{Input: &NodeScan{}, Col: 0}},
		{Root: &Filter{Input: &NodeScan{}, Pred: &Not{X: &Or{L: &HasLabel{Col: 0, Label: "a"}, R: &Cmp{Op: Ne, L: &LabelOf{Col: 0}, R: &Param{Name: "x"}}}}}},
		{Root: &OrderBy{Input: &NodeScan{}, Key: &IDOf{Col: 0}, Desc: true, Limit: 5}},
	}
	seen := map[string]bool{}
	for _, p := range plans {
		sig := p.Signature()
		if sig == "" {
			t.Error("empty signature")
		}
		if seen[sig] {
			t.Errorf("duplicate signature %q", sig)
		}
		seen[sig] = true
	}
}

func TestPrepareRejectsNilPlan(t *testing.T) {
	e, _, _ := testGraph(t, core.DRAM)
	if _, err := Prepare(e, &Plan{}); !errors.Is(err, ErrBadPlan) {
		t.Errorf("Prepare(empty) = %v", err)
	}
}
