package poseidon

import (
	"context"
	"errors"
	"fmt"

	"poseidon/internal/core"
	"poseidon/internal/query"
)

// errRowsClosed is the cancellation cause used by Rows.Close, so a
// deliberate early close is not reported as an execution error.
var errRowsClosed = errors.New("poseidon: rows closed")

// rowsBatchSize is how many rows the producer goroutine hands over per
// channel operation. Batching amortizes the channel synchronization so
// streaming stays within a few percent of materialized throughput.
const rowsBatchSize = 128

// Rows is a streaming result cursor. The query runs in a producer
// goroutine that pushes batches of raw rows; the consumer pulls them
// with Next and decodes values only on demand (Values/Scan), so a scan
// that inspects raw values never materializes the full result.
//
//	rows, err := sess.Query(ctx, stmt, params)
//	if err != nil { ... }
//	defer rows.Close()
//	for rows.Next() {
//		var name string
//		if err := rows.Scan(&name); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Rows is not safe for concurrent use. Close is idempotent, cancels the
// query, and does not return until the underlying transaction has been
// rolled back, so no goroutine or transaction outlives the cursor.
type Rows struct {
	db     *DB
	ctx    context.Context
	cancel context.CancelCauseFunc
	ch     chan []query.Row
	done   chan error

	batch    []query.Row
	idx      int
	cur      query.Row
	err      error
	closed   bool
	finished bool
}

// newRows starts run in a producer goroutine. Whatever path execution
// takes, the goroutine calls end — which rolls back a cursor-owned
// transaction and releases timers — before signalling completion, so
// once the consumer observes the cursor finished, nothing is left
// running.
func newRows(parent context.Context, db *DB, end func(),
	run func(context.Context, func(query.Row) bool) error) *Rows {
	ctx, cancel := context.WithCancelCause(parent)
	r := &Rows{
		db:     db,
		ctx:    ctx,
		cancel: cancel,
		ch:     make(chan []query.Row, 1),
		done:   make(chan error, 1),
	}
	go func() {
		batch := make([]query.Row, 0, rowsBatchSize)
		err := run(ctx, func(row query.Row) bool {
			batch = append(batch, row)
			if len(batch) < rowsBatchSize {
				return true
			}
			select {
			case r.ch <- batch:
				batch = make([]query.Row, 0, rowsBatchSize)
				return true
			case <-ctx.Done():
				return false
			}
		})
		if err == nil && len(batch) > 0 {
			select {
			case r.ch <- batch:
			case <-ctx.Done():
			}
		}
		// Read the context's verdict before end() — end releases the
		// deadline timer by cancelling ctx, which must not masquerade
		// as a mid-query cancellation.
		if err == nil {
			err = ctx.Err()
		}
		if end != nil {
			end()
		}
		r.done <- err
		close(r.ch)
	}()
	return r
}

// Next advances to the next row, returning false when the result is
// exhausted or an error occurred (check Err).
func (r *Rows) Next() bool {
	if r.closed || r.finished {
		return false
	}
	if r.idx < len(r.batch) {
		r.cur = r.batch[r.idx]
		r.idx++
		return true
	}
	batch, ok := <-r.ch
	if !ok {
		r.finish()
		return false
	}
	r.batch, r.idx = batch, 1
	r.cur = batch[0]
	return true
}

// Row returns the current row's raw storage values without decoding.
// The slice is only valid until the next call to Next.
func (r *Rows) Row() query.Row { return r.cur }

// Values decodes the current row to Go values.
func (r *Rows) Values() ([]any, error) {
	out := make([]any, len(r.cur))
	for i, v := range r.cur {
		gv, err := r.db.engine.DecodeValue(v)
		if err != nil {
			return nil, err
		}
		out[i] = gv
	}
	return out, nil
}

// Scan decodes the current row into dest, which must contain one pointer
// per column (*any, *int64, *string, *float64 or *bool).
func (r *Rows) Scan(dest ...any) error {
	if len(dest) != len(r.cur) {
		return fmt.Errorf("poseidon: Scan got %d targets for %d columns", len(dest), len(r.cur))
	}
	vals, err := r.Values()
	if err != nil {
		return err
	}
	for i, d := range dest {
		switch p := d.(type) {
		case *any:
			*p = vals[i]
		case *int64:
			x, ok := vals[i].(int64)
			if !ok {
				return fmt.Errorf("poseidon: Scan column %d: %T is not int64", i, vals[i])
			}
			*p = x
		case *string:
			x, ok := vals[i].(string)
			if !ok {
				return fmt.Errorf("poseidon: Scan column %d: %T is not string", i, vals[i])
			}
			*p = x
		case *float64:
			x, ok := vals[i].(float64)
			if !ok {
				return fmt.Errorf("poseidon: Scan column %d: %T is not float64", i, vals[i])
			}
			*p = x
		case *bool:
			x, ok := vals[i].(bool)
			if !ok {
				return fmt.Errorf("poseidon: Scan column %d: %T is not bool", i, vals[i])
			}
			*p = x
		default:
			return fmt.Errorf("poseidon: Scan column %d: unsupported target %T", i, d)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. A deliberate
// Close and a normally exhausted result both report nil.
func (r *Rows) Err() error { return r.err }

// Close cancels the query if it is still running and blocks until the
// producer goroutine has rolled back its transaction. It is safe to call
// multiple times and after exhaustion.
func (r *Rows) Close() error {
	if r.closed {
		return r.err
	}
	r.closed = true
	r.cancel(errRowsClosed)
	for range r.ch {
		// Drain so the producer unblocks and finishes cleanup.
	}
	r.finish()
	return r.err
}

// Collect exhausts the cursor, decoding every remaining row, and closes
// it: the materialized convenience path.
func (r *Rows) Collect() ([][]any, error) {
	var out [][]any
	for r.Next() {
		vals, err := r.Values()
		if err != nil {
			r.Close()
			return nil, err
		}
		out = append(out, vals)
	}
	r.Close()
	if r.err != nil {
		return nil, r.err
	}
	return out, nil
}

// finish consumes the producer's final status exactly once and
// normalizes a Close-induced cancellation to success.
func (r *Rows) finish() {
	if r.finished {
		return
	}
	r.finished = true
	err := <-r.done
	r.cancel(errRowsClosed)
	if err != nil && context.Cause(r.ctx) == errRowsClosed &&
		(errors.Is(err, context.Canceled) || errors.Is(err, core.ErrTxDone)) {
		err = nil
	}
	r.err = err
}
