package poseidon

// One benchmark per table/figure of the paper's evaluation (§7). Each
// benchmark drives the internal/bench harness, which prints the same rows
// the corresponding figure reports; run with -v (or see cmd/poseidon-bench
// for the full-scale standalone runner):
//
//	go test -bench=Fig -benchtime=1x .
//
// Absolute numbers differ from the paper (simulated devices), but the
// shapes must hold; EXPERIMENTS.md records paper-vs-measured per figure.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"poseidon/internal/bench"
	"poseidon/internal/query"
)

var (
	setupOnce sync.Once
	setup     *bench.Setup
	setupErr  error
)

// benchScale reads POSEIDON_BENCH_PERSONS (default 200: a few seconds of
// load, large enough for every shape to show).
func benchScale() int {
	if v := os.Getenv("POSEIDON_BENCH_PERSONS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 200
}

func getSetup(b *testing.B) *bench.Setup {
	setupOnce.Do(func() {
		setup, setupErr = bench.NewSetup(bench.Options{
			Persons: benchScale(),
			Runs:    10,
		})
	})
	if setupErr != nil {
		b.Fatal(setupErr)
	}
	return setup
}

func runFigure(b *testing.B, f func() (*bench.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := f()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Printed to stdout rather than b.Log: the testing package
			// truncates long benchmark logs in non-verbose runs, and the
			// full table is the deliverable.
			fmt.Printf("\n%s\n", tbl.Format())
		}
	}
}

// BenchmarkFig5_ShortReads regenerates Fig 5: SR queries on DISK-i,
// DRAM-s/p/i and PMem-s/p/i.
func BenchmarkFig5_ShortReads(b *testing.B) {
	s := getSetup(b)
	runFigure(b, s.Fig5)
}

// BenchmarkFig6_InteractiveUpdates regenerates Fig 6: IU execute+commit
// on DISK/DRAM/PMem, hot and cold.
func BenchmarkFig6_InteractiveUpdates(b *testing.B) {
	s := getSetup(b)
	runFigure(b, s.Fig6)
}

// BenchmarkFig7_JITShortReads regenerates Fig 7: SR under the JIT engine
// (AOT vs JIT plus compile time).
func BenchmarkFig7_JITShortReads(b *testing.B) {
	s := getSetup(b)
	runFigure(b, s.Fig7)
}

// BenchmarkFig8_IndexLookup regenerates Fig 8: B+-tree lookup latency per
// variant and recovery vs rebuild times (§7.4).
func BenchmarkFig8_IndexLookup(b *testing.B) {
	s := getSetup(b)
	runFigure(b, s.Fig8)
}

// BenchmarkFig9_JITUpdates regenerates Fig 9: IU under the JIT engine
// (AOT vs hot cached code vs cold compilation).
func BenchmarkFig9_JITUpdates(b *testing.B) {
	s := getSetup(b)
	runFigure(b, s.Fig9)
}

// BenchmarkFig10_Adaptive regenerates Fig 10: adaptive execution vs
// multi-threaded AOT on DRAM and PMem.
func BenchmarkFig10_Adaptive(b *testing.B) {
	s := getSetup(b)
	runFigure(b, s.Fig10)
}

// BenchmarkAblations regenerates the design-decision ablation table of
// DESIGN.md (DG1-DG6 choices vs their alternatives).
func BenchmarkAblations(b *testing.B) {
	s := getSetup(b)
	runFigure(b, s.Ablations)
}

// --- micro-benchmarks for the primary transactional operations ---

// BenchmarkTxCommitSmallUpdate measures a single-property update
// transaction end to end on the PMem engine (execute + MVTO commit with
// the pmemobj undo log).
func BenchmarkTxCommitSmallUpdate(b *testing.B) {
	db, err := Open(Config{Mode: PMem, PoolSize: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tx := db.Begin()
	id, err := tx.CreateNode("Person", map[string]any{"v": int64(0)})
	if err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := db.Begin()
		if err := tx.SetNodeProps(id, map[string]any{"v": int64(i)}); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- streamed vs materialized result delivery ---

var (
	streamOnce sync.Once
	streamDB   *DB
	streamErr  error
)

// streamBenchDB lazily builds a 100k-node DRAM graph shared by the
// streamed/materialized pair, so both measure delivery, not setup.
func streamBenchDB(b *testing.B) *DB {
	streamOnce.Do(func() {
		streamDB, streamErr = Open(Config{Mode: DRAM, PoolSize: 512 << 20})
		if streamErr != nil {
			return
		}
		const batch = 10000
		for i := 0; i < 100000; i += batch {
			tx := streamDB.Begin()
			for j := i; j < i+batch; j++ {
				if _, streamErr = tx.CreateNode("Person", map[string]any{"v": int64(j)}); streamErr != nil {
					return
				}
			}
			if streamErr = tx.Commit(); streamErr != nil {
				return
			}
		}
	})
	if streamErr != nil {
		b.Fatal(streamErr)
	}
	return streamDB
}

func streamBenchPlan() *query.Plan {
	return &query.Plan{Root: &query.Project{
		Input: &query.NodeScan{Label: "Person"},
		Cols:  []query.Expr{&query.Prop{Col: 0, Key: "v"}},
	}}
}

// BenchmarkScan100kMaterialized collects a 100k-row scan into [][]any
// through the classic facade path: every row is decoded and held.
func BenchmarkScan100kMaterialized(b *testing.B) {
	db := streamBenchDB(b)
	plan := streamBenchPlan()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Query(plan, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 100000 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
	b.ReportMetric(float64(100000*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkScan100kStreamed pulls the same scan through a Rows cursor,
// reading raw values without decoding or materializing: the streaming
// path's allocation advantage is the point of the comparison.
func BenchmarkScan100kStreamed(b *testing.B) {
	db := streamBenchDB(b)
	stmt, err := db.PreparePlan(streamBenchPlan())
	if err != nil {
		b.Fatal(err)
	}
	sess := db.NewSession(SessionConfig{})
	defer sess.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := sess.Query(context.Background(), stmt, nil)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for rows.Next() {
			_ = rows.Row()
			n++
		}
		if err := rows.Close(); err != nil {
			b.Fatal(err)
		}
		if n != 100000 {
			b.Fatalf("rows = %d", n)
		}
	}
	b.ReportMetric(float64(100000*b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkPointLookup measures an indexed point lookup through the
// public API on the PMem engine.
func BenchmarkPointLookup(b *testing.B) {
	db, err := Open(Config{Mode: PMem, PoolSize: 256 << 20})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tx := db.Begin()
	for i := 0; i < 10000; i++ {
		if _, err := tx.CreateNode("Person", map[string]any{"num": int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("Person", "num", HybridIndex); err != nil {
		b.Fatal(err)
	}
	plan := &query.Plan{Root: &query.Project{
		Input: &query.IndexScan{Label: "Person", Key: "num", Value: &query.Param{Name: "n"}},
		Cols:  []query.Expr{&query.IDOf{Col: 0}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := db.Query(plan, query.Params{"n": int64(i % 10000)})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 1 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}
