package poseidon

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/query"
)

// openTelemetryDB opens a PMem database with telemetry on and an
// aggressive slow-query threshold so traces are actually recorded.
func openTelemetryDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(Config{
		Mode:     PMem,
		PoolSize: 128 << 20,
		Telemetry: TelemetryConfig{
			Enabled:            true,
			SlowQueryThreshold: time.Nanosecond,
			SlowQueryLogSize:   16,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

// mixedWorkload runs a representative SR/IU mix: commits, a forced
// write-write conflict, JIT + parallel + adaptive reads, and repeated
// Cypher for statement-cache hits.
func mixedWorkload(t *testing.T, db *DB) {
	t.Helper()
	tx := db.Begin()
	ids := make([]uint64, 0, 64)
	for i := 0; i < 64; i++ {
		id, err := tx.CreateNode("Person", map[string]any{"name": fmt.Sprintf("p%02d", i), "age": int64(20 + i%40)})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		if _, err := tx.CreateRel(ids[i-1], ids[i], "knows", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Force a write-write conflict: two transactions update one node.
	t1, t2 := db.Begin(), db.Begin()
	if err := t1.SetNodeProps(ids[0], map[string]any{"age": int64(99)}); err != nil {
		t.Fatal(err)
	}
	if err := t2.SetNodeProps(ids[0], map[string]any{"age": int64(98)}); err == nil {
		t.Fatal("expected a write-write conflict")
	} else if !errors.Is(err, core.ErrAborted) {
		t.Fatalf("conflict error = %v, want ErrAborted", err)
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	src := `MATCH (p:Person) RETURN p.name`
	for _, mode := range []ExecMode{Interpret, Parallel, JIT, Adaptive} {
		if _, err := db.CypherModeCtx(ctx, src, nil, mode); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
	}
	// An update through a session (IU-style).
	sess := db.NewSession(SessionConfig{})
	defer sess.Close()
	upd, err := db.Prepare(`MATCH (p:Person {name: $n}) SET p.age = $a`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(ctx, upd, query.Params{"n": "p01", "a": int64(77)}); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsEndToEnd is the acceptance scenario: a mixed SR/IU workload
// followed by a scrape of the Prometheus endpoint, asserting the pmem,
// MVTO-abort, JIT, statement-cache and query-latency families all carry
// plausible values.
func TestMetricsEndToEnd(t *testing.T) {
	db := openTelemetryDB(t)
	mixedWorkload(t, db)

	srv := httptest.NewServer(db.DebugMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Every required family must be present and the load-bearing series
	// nonzero after this workload.
	nonzero := []string{
		"poseidon_pmem_reads_total",
		"poseidon_pmem_writes_total",
		"poseidon_pmem_block_writes_total",
		"poseidon_tx_begun_total",
		"poseidon_tx_commits_total",
		`poseidon_tx_aborts_total{reason="write_conflict"}`,
		"poseidon_jit_compiles_total",
		"poseidon_stmt_cache_misses_total",
		"poseidon_query_duration_seconds_count",
		"poseidon_query_rows_total",
		`poseidon_queries_total{mode="jit"}`,
		`poseidon_queries_total{mode="parallel"}`,
	}
	for _, name := range nonzero {
		v, ok := scrapeValue(body, name)
		if !ok {
			t.Errorf("metric %s missing from scrape", name)
			continue
		}
		if v <= 0 {
			t.Errorf("metric %s = %v, want > 0", name, v)
		}
	}
	// Present (possibly zero) families.
	for _, name := range []string{
		`poseidon_tx_aborts_total{reason="validation"}`,
		`poseidon_jit_code_cache_hits_total{tier="memory"}`,
		`poseidon_jit_morsels_total{path="interpreted"}`,
		"poseidon_query_duration_seconds_bucket",
		"poseidon_mvto_chain_walk_length_count",
		"poseidon_sessions_active",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metric %s missing from scrape", name)
		}
	}

	// The structured snapshot must agree with the workload too.
	m := db.Metrics()
	if !m.Enabled {
		t.Fatal("Metrics().Enabled = false on an enabled DB")
	}
	if m.Tx.Commits == 0 || m.Tx.Begun == 0 {
		t.Errorf("tx metrics = %+v, want nonzero begun/commits", m.Tx)
	}
	if m.Tx.Aborts["write_conflict"] == 0 {
		t.Errorf("aborts = %v, want a write_conflict", m.Tx.Aborts)
	}
	if m.JIT.Compiles == 0 {
		t.Error("JIT compiles = 0 after JIT query")
	}
	if m.Query.Count < 5 || m.Query.Latency.Count < 5 {
		t.Errorf("query count %d / latency count %d, want >= 5", m.Query.Count, m.Query.Latency.Count)
	}
	if m.Query.Rows == 0 {
		t.Error("rows streamed = 0")
	}
	if m.PMem.Reads == 0 || m.PMem.Writes == 0 {
		t.Error("pmem stats empty")
	}
	if m.Nodes == 0 || m.Rels == 0 {
		t.Error("graph size gauges empty")
	}

	// The 1ns threshold makes every query slow: the log must hold traces
	// with a mode and a total.
	slow := db.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("slow-query log empty despite 1ns threshold")
	}
	if slow[0].Total <= 0 || slow[0].Mode == "" || slow[0].Query == "" {
		t.Errorf("slow trace incomplete: %+v", slow[0])
	}
}

// scrapeValue extracts the value of a series from a text exposition.
func scrapeValue(body, name string) (float64, bool) {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if !strings.HasPrefix(rest, " ") { // longer name with same prefix
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
			return v, true
		}
	}
	return 0, false
}

// TestTelemetryParallelQueryHammer drives telemetry from many concurrent
// query workers — meaningful under -race — and checks the counters add
// up.
func TestTelemetryParallelQueryHammer(t *testing.T) {
	db := openTelemetryDB(t)
	seedSocial(t, db)
	stmt, err := db.Prepare(`MATCH (p:Person) RETURN p.name`)
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := db.NewSession(SessionConfig{Mode: ExecMode(w % 4)})
			defer sess.Close()
			for i := 0; i < perWorker; i++ {
				if _, err := sess.QueryAll(context.Background(), stmt, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	m := db.Metrics()
	if m.Query.Count != workers*perWorker {
		t.Errorf("query count = %d, want %d", m.Query.Count, workers*perWorker)
	}
	if m.Query.Latency.Count != workers*perWorker {
		t.Errorf("latency observations = %d, want %d", m.Query.Latency.Count, workers*perWorker)
	}
	// 3 visible persons per query.
	if want := uint64(workers * perWorker * 3); m.Query.Rows != want {
		t.Errorf("rows = %d, want %d", m.Query.Rows, want)
	}
	if m.SessionsActive != 0 {
		t.Errorf("sessions gauge = %d after all closed, want 0", m.SessionsActive)
	}
}

// TestDisabledTelemetryZeroCost asserts the disabled path: Metrics()
// still works (always-on stats filled), the endpoint answers 503, and
// the per-query instrumentation adds zero allocations.
func TestDisabledTelemetryZeroCost(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)

	m := db.Metrics()
	if m.Enabled {
		t.Fatal("Metrics().Enabled = true on a disabled DB")
	}
	if m.PMem.Writes == 0 || m.Nodes == 0 {
		t.Errorf("always-on stats empty on disabled DB: %+v", m)
	}
	if db.SlowQueries() != nil {
		t.Error("SlowQueries() non-nil on disabled DB")
	}

	srv := httptest.NewServer(db.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Errorf("disabled /metrics status = %d, want 503", resp.StatusCode)
	}

	// The instrumentation funnel must add zero allocations when disabled:
	// stmt.run (the instrumented wrapper) and stmt.runInner (the bare
	// dispatch) must have identical allocation profiles, down to zero
	// difference. Query execution itself allocates, so compare, don't
	// demand absolute zero.
	stmt, err := db.Prepare(`MATCH (p:Person {name: $n}) RETURN p.age`)
	if err != nil {
		t.Fatal(err)
	}
	params := query.Params{"n": "alice"}
	tx := db.Begin()
	defer tx.Abort()
	emit := func(query.Row) bool { return true }
	ctx := context.Background()
	inner := testing.AllocsPerRun(100, func() {
		if _, err := stmt.runInner(ctx, tx, params, Interpret, 1, emit); err != nil {
			t.Fatal(err)
		}
	})
	wrapped := testing.AllocsPerRun(100, func() {
		if err := stmt.run(ctx, tx, params, Interpret, 1, emit); err != nil {
			t.Fatal(err)
		}
	})
	if wrapped > inner {
		t.Errorf("disabled stmt.run allocates %v/op vs %v/op bare — instrumentation leaks into the disabled path", wrapped, inner)
	}
}
