package poseidon

// Cross-process persistence: the durable device image can be saved to a
// stream (standing in for a DAX-mounted pool file), loaded into a fresh
// device and recovered — the path cmd/ldbcgen -save and the recovery
// example exercise.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"poseidon/internal/pmem"
	"poseidon/internal/query"
)

func TestDeviceImageSaveLoadReopen(t *testing.T) {
	// Run the whole engine stack under the strict flush checker: a read
	// of any line that missed its Flush before a Drain barrier panics.
	t.Setenv(pmem.StrictEnv, "1")
	db, err := Open(Config{Mode: PMem, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	alice, _, _ := seedSocial(t, db)
	if err := db.CreateIndex("Person", "name", HybridIndex); err != nil {
		t.Fatal(err)
	}

	// Save the durable image (what a pool file would hold).
	var img bytes.Buffer
	if err := db.Device().Save(&img); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// A brand-new device in a "new process": load the image and recover.
	dev := pmem.NewPMem(64 << 20)
	if err := dev.Load(bytes.NewReader(img.Bytes())); err != nil {
		t.Fatal(err)
	}
	db2, err := Reopen(dev, Config{Mode: PMem})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()

	if db2.NodeCount() != 3 || db2.RelCount() != 2 {
		t.Fatalf("counts after image load = %d/%d, want 3/2", db2.NodeCount(), db2.RelCount())
	}
	// The hybrid index came back with the image.
	plan := &query.Plan{Root: &query.Project{
		Input: &query.IndexScan{Label: "Person", Key: "name", Value: &query.Param{Name: "n"}},
		Cols:  []query.Expr{&query.IDOf{Col: 0}},
	}}
	rows, err := db2.Query(plan, query.Params{"n": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || uint64(rows[0][0].(int64)) != alice {
		t.Errorf("indexed lookup after image load = %v, want [[%d]]", rows, alice)
	}
}

func TestDeviceImageFileRoundTrip(t *testing.T) {
	t.Setenv(pmem.StrictEnv, "1")
	db, err := Open(Config{Mode: PMem, PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	seedSocial(t, db)

	path := filepath.Join(t.TempDir(), "pool.img")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Device().Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	dev := pmem.NewPMem(64 << 20)
	if err := dev.Load(f2); err != nil {
		t.Fatal(err)
	}
	db2, err := Reopen(dev, Config{Mode: PMem})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.NodeCount() != 3 {
		t.Errorf("nodes after file round trip = %d", db2.NodeCount())
	}
}
