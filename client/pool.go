package client

import (
	"context"
	"errors"
	"sync"
)

// ErrPoolClosed is returned by Get after Close.
var ErrPoolClosed = errors.New("client: pool is closed")

// Pool is a bounded pool of connections to one server. Get hands out
// an idle connection or dials a new one up to MaxConns, blocking when
// the pool is exhausted; Put returns healthy connections and discards
// broken or in-transaction ones.
type Pool struct {
	addr string
	opts Options

	// sem bounds total live connections (idle + checked out).
	sem  chan struct{}
	mu   sync.Mutex
	idle []*Conn
	done bool
}

// NewPool builds a pool of at most maxConns connections to addr.
// Connections are dialed lazily.
func NewPool(addr string, maxConns int, opts Options) *Pool {
	if maxConns <= 0 {
		maxConns = 8
	}
	return &Pool{addr: addr, opts: opts, sem: make(chan struct{}, maxConns)}
}

// Get checks out a connection, dialing if no idle one exists. It
// blocks while the pool is at capacity until a connection is returned
// or ctx is cancelled.
func (p *Pool) Get(ctx context.Context) (*Conn, error) {
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		<-p.sem
		return nil, ErrPoolClosed
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	c, err := Dial(p.addr, p.opts)
	if err != nil {
		<-p.sem
		return nil, err
	}
	return c, nil
}

// Put returns a connection to the pool. Broken connections and
// connections holding an open transaction are closed instead of
// recycled (a leaked transaction on a pooled connection would bleed
// into an unrelated caller).
func (p *Pool) Put(c *Conn) {
	defer func() { <-p.sem }()
	if c == nil {
		return
	}
	if c.Broken() || c.InTx() {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
}

// Close closes every idle connection and fails future Gets.
// Checked-out connections are closed by their holders.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.done = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}

// Do checks out a connection, runs fn, and returns it, resetting the
// connection first if fn left a transaction open.
func (p *Pool) Do(ctx context.Context, fn func(*Conn) error) error {
	c, err := p.Get(ctx)
	if err != nil {
		return err
	}
	defer p.Put(c)
	err = fn(c)
	if c.InTx() && !c.Broken() {
		_ = c.Reset()
	}
	return err
}
