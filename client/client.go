// Package client is the Go driver for poseidond's framed wire
// protocol. A Conn is one TCP connection with its own handshake,
// statement namespace, and (optionally) one open transaction; it is
// not safe for concurrent use — use a Pool to share connections
// between goroutines.
package client

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"time"

	"poseidon/internal/trace"
	"poseidon/internal/wire"
)

// ServerError is an ERROR frame from the server, carrying the
// machine-readable code (wire.Code*) alongside the message.
type ServerError struct {
	Code    string
	Message string
}

func (e *ServerError) Error() string { return "poseidond: " + e.Code + ": " + e.Message }

// IsCode reports whether err is a ServerError with the given code.
func IsCode(err error, code string) bool {
	se, ok := err.(*ServerError)
	return ok && se.Code == code
}

// Options parameterize Dial.
type Options struct {
	// UserAgent identifies the client in HELLO (default "poseidon-go").
	UserAgent string
	// Mode, when set, pins the connection's default execution mode to
	// one of the poseidon.ExecMode values; leave nil for the server
	// default.
	Mode *uint8
	// DialTimeout bounds connection establishment plus the handshake
	// (default 10s).
	DialTimeout time.Duration
	// MaxMessage caps the size of a received frame body (default
	// wire.MaxMessage).
	MaxMessage int
	// Tracer, when set, roots a client-side span around every request
	// and propagates the trace identity to the server, which continues
	// the same trace through admission, execution and commit. The
	// metadata rides protocol version 2; against a v1 server the
	// request is still traced locally but nothing is propagated.
	Tracer *trace.Tracer
}

func (o *Options) fill() {
	if o.UserAgent == "" {
		o.UserAgent = "poseidon-go"
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.MaxMessage == 0 {
		o.MaxMessage = wire.MaxMessage
	}
}

// Stmt is a statement prepared on one connection. It is only valid on
// the connection that prepared it.
type Stmt struct {
	ID         uint32
	HasUpdates bool
	text       string
}

// Conn is one client connection to a poseidond server.
type Conn struct {
	nc   net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	opts Options

	// broken marks the connection unusable after an I/O or protocol
	// error (server error frames do NOT break the connection).
	broken bool
	inTx   bool
	srv    map[string]any

	// version is the protocol version the handshake negotiated.
	version uint32
	// lastTraceID identifies the most recent traced request (0 = none).
	lastTraceID uint64
}

// Dial connects, handshakes, and says HELLO.
func Dial(addr string, opts Options) (*Conn, error) {
	opts.fill()
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &Conn{
		nc:   nc,
		br:   bufio.NewReaderSize(nc, 16<<10),
		bw:   bufio.NewWriterSize(nc, 32<<10),
		opts: opts,
	}
	nc.SetDeadline(time.Now().Add(opts.DialTimeout))
	if err := c.handshakeHello(); err != nil {
		nc.Close()
		return nil, err
	}
	nc.SetDeadline(time.Time{})
	return c, nil
}

func (c *Conn) handshakeHello() error {
	// Preference order: v2 (trace metadata) first, v1 for old servers.
	if err := wire.WriteClientHandshake(c.bw, wire.Version2, wire.Version1); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	v, err := wire.ReadServerHandshake(c.br)
	if err != nil {
		return err
	}
	c.version = v
	mode := uint8(wire.ModeDefault)
	if c.opts.Mode != nil {
		mode = *c.opts.Mode
	}
	sp, tc := c.traceStart("client.hello")
	meta, err := c.request(&wire.Hello{UserAgent: c.opts.UserAgent, Mode: mode, Trace: tc})
	sp.SetError(err)
	sp.End()
	if err != nil {
		return err
	}
	c.srv = meta
	return nil
}

// ProtocolVersion returns the wire version the handshake negotiated.
func (c *Conn) ProtocolVersion() uint32 { return c.version }

// traceStart roots a client span for one request, recording its trace
// ID on the connection. The returned wire context is nil when tracing
// is off — or when the server only speaks v1, which has no metadata
// slot; the request is still traced locally in that case.
func (c *Conn) traceStart(name string) (*trace.Span, *wire.TraceContext) {
	if c.opts.Tracer == nil {
		return nil, nil
	}
	//poseidonlint:ignore ctx-threading the driver API is context-free; the span roots its own trace
	_, sp := c.opts.Tracer.Start(context.Background(), name, trace.KindClient)
	c.lastTraceID = sp.TraceID()
	if c.version < wire.Version2 {
		return sp, nil
	}
	sc := sp.Context()
	return sp, &wire.TraceContext{TraceID: sc.TraceID, SpanID: sc.SpanID}
}

// LastTraceID returns the trace ID of the most recent traced request in
// the hex form /debug/traces accepts, or "" when tracing is off. The
// server retains the same ID for propagated traces, so this is the
// handle to look up a slow request's server-side spans.
func (c *Conn) LastTraceID() string {
	if c.lastTraceID == 0 {
		return ""
	}
	return trace.FormatID(c.lastTraceID)
}

// ServerInfo returns the metadata from the HELLO response (server
// name, version, default mode).
func (c *Conn) ServerInfo() map[string]any { return c.srv }

// Broken reports whether the connection hit an I/O or protocol error
// and must be discarded.
func (c *Conn) Broken() bool { return c.broken }

// InTx reports whether an explicit transaction is open.
func (c *Conn) InTx() bool { return c.inTx }

// Close says GOODBYE (best-effort) and closes the connection.
func (c *Conn) Close() error {
	if !c.broken {
		_ = wire.WriteMessage(c.bw, &wire.Goodbye{})
		_ = c.bw.Flush()
	}
	return c.nc.Close()
}

// send writes one message and flushes; any failure breaks the conn.
func (c *Conn) send(m wire.Message) error {
	if c.broken {
		return fmt.Errorf("client: connection is broken")
	}
	if err := wire.WriteMessage(c.bw, m); err != nil {
		c.broken = true
		return err
	}
	if err := c.bw.Flush(); err != nil {
		c.broken = true
		return err
	}
	return nil
}

// recv reads one response frame. ERROR frames are returned as
// *ServerError without breaking the connection; transport and decode
// failures break it.
func (c *Conn) recv() (wire.Message, error) {
	m, err := wire.ReadMessageMax(c.br, c.opts.MaxMessage)
	if err != nil {
		c.broken = true
		return nil, err
	}
	if e, ok := m.(*wire.Error); ok {
		return nil, &ServerError{Code: e.Code, Message: e.Message}
	}
	return m, nil
}

// request performs one send/SUCCESS round trip.
func (c *Conn) request(m wire.Message) (map[string]any, error) {
	if err := c.send(m); err != nil {
		return nil, err
	}
	resp, err := c.recv()
	if err != nil {
		return nil, err
	}
	s, ok := resp.(*wire.Success)
	if !ok {
		c.broken = true
		return nil, fmt.Errorf("client: expected SUCCESS, got %s", wire.MsgName(resp.Type()))
	}
	return s.Meta, nil
}

// Prepare registers a statement on the server. Text is Cypher, or an
// "ldbc:<name>" built-in workload statement (e.g. "ldbc:sr2-post").
func (c *Conn) Prepare(text string) (*Stmt, error) {
	meta, err := c.request(&wire.Prepare{Text: text})
	if err != nil {
		return nil, err
	}
	id, _ := meta["stmt_id"].(int64)
	if id <= 0 {
		c.broken = true
		return nil, fmt.Errorf("client: PREPARE response missing stmt_id")
	}
	upd, _ := meta["has_updates"].(bool)
	return &Stmt{ID: uint32(id), HasUpdates: upd, text: text}, nil
}

// run issues RUN and returns its SUCCESS metadata.
func (c *Conn) run(stmt *Stmt, text string, params map[string]any) (map[string]any, error) {
	r := &wire.Run{Text: text, Params: params, Mode: wire.ModeDefault}
	if stmt != nil {
		r.StmtID = stmt.ID
	}
	sp, tc := c.traceStart("client.request")
	r.Trace = tc
	if sp != nil {
		if text != "" {
			sp.SetAttr("text", text)
		} else if stmt != nil {
			sp.SetAttr("text", stmt.text)
		}
	}
	meta, err := c.request(r)
	sp.SetError(err)
	sp.End()
	return meta, err
}

// pullAll drains the open result with PULL(-1).
func (c *Conn) pullAll() ([][]any, error) {
	if err := c.send(&wire.Pull{N: -1}); err != nil {
		return nil, err
	}
	var rows [][]any
	for {
		m, err := c.recv()
		if err != nil {
			return nil, err
		}
		switch t := m.(type) {
		case *wire.Record:
			rows = append(rows, t.Values)
		case *wire.Success:
			return rows, nil
		default:
			c.broken = true
			return nil, fmt.Errorf("client: unexpected %s in result stream", wire.MsgName(m.Type()))
		}
	}
}

// Run starts a streaming statement by text without pulling any
// records: the server holds an admission slot until PullAll or a
// DISCARD/RESET releases it. Most callers want Query/QueryText; Run
// exists for callers that interleave pulling with other work.
func (c *Conn) Run(text string, params map[string]any) error {
	meta, err := c.run(nil, text, params)
	if err != nil {
		return err
	}
	if streaming, _ := meta["streaming"].(bool); !streaming {
		return fmt.Errorf("client: Run on non-streaming statement")
	}
	return nil
}

// PullAll drains the result opened by Run.
func (c *Conn) PullAll() ([][]any, error) { return c.pullAll() }

// Query runs a prepared read statement and returns all rows. Inside an
// explicit transaction the statement observes the transaction's
// uncommitted effects.
func (c *Conn) Query(stmt *Stmt, params map[string]any) ([][]any, error) {
	meta, err := c.run(stmt, "", params)
	if err != nil {
		return nil, err
	}
	if streaming, _ := meta["streaming"].(bool); !streaming {
		// Update statement in auto-commit: no result to pull.
		return nil, nil
	}
	return c.pullAll()
}

// QueryText is Query for one-shot statement text (no PREPARE).
func (c *Conn) QueryText(text string, params map[string]any) ([][]any, error) {
	meta, err := c.run(nil, text, params)
	if err != nil {
		return nil, err
	}
	if streaming, _ := meta["streaming"].(bool); !streaming {
		return nil, nil
	}
	return c.pullAll()
}

// Exec runs a prepared statement for effect. Outside a transaction an
// update auto-commits and Exec returns its rows-affected count; inside
// one (or for a read statement) the result is drained and its row
// count returned.
func (c *Conn) Exec(stmt *Stmt, params map[string]any) (int64, error) {
	meta, err := c.run(stmt, "", params)
	if err != nil {
		return 0, err
	}
	if streaming, _ := meta["streaming"].(bool); streaming {
		rows, err := c.pullAll()
		if err != nil {
			return 0, err
		}
		return int64(len(rows)), nil
	}
	n, _ := meta["rows_affected"].(int64)
	return n, nil
}

// ExecText is Exec for one-shot statement text (no PREPARE).
func (c *Conn) ExecText(text string, params map[string]any) (int64, error) {
	meta, err := c.run(nil, text, params)
	if err != nil {
		return 0, err
	}
	if streaming, _ := meta["streaming"].(bool); streaming {
		rows, err := c.pullAll()
		if err != nil {
			return 0, err
		}
		return int64(len(rows)), nil
	}
	n, _ := meta["rows_affected"].(int64)
	return n, nil
}

// Sys runs a "sys:<name>" introspection statement and returns its
// response metadata: Sys("profile") is the profile of the connection's
// most recent traced request, Sys("traces") the retained trace
// summaries as JSON, and Sys("trace:<id>") one trace as Chrome
// trace-event JSON.
func (c *Conn) Sys(name string) (map[string]any, error) {
	return c.run(nil, "sys:"+name, nil)
}

// Begin opens an explicit transaction on the connection.
func (c *Conn) Begin() error {
	if c.inTx {
		return fmt.Errorf("client: transaction already open")
	}
	if _, err := c.request(&wire.Begin{}); err != nil {
		return err
	}
	c.inTx = true
	return nil
}

// Commit commits the open transaction. A CONFLICT ServerError means
// MVTO validation aborted it; the transaction is over either way.
func (c *Conn) Commit() error {
	c.inTx = false
	_, err := c.request(&wire.Commit{})
	return err
}

// Rollback aborts the open transaction.
func (c *Conn) Rollback() error {
	c.inTx = false
	_, err := c.request(&wire.Rollback{})
	return err
}

// Reset returns the connection to a clean state: any open result is
// discarded and any open transaction rolled back.
func (c *Conn) Reset() error {
	c.inTx = false
	_, err := c.request(&wire.Reset{})
	return err
}

// Ping round-trips a RESET to verify the connection is alive.
func (c *Conn) Ping(ctx context.Context) error {
	if d, ok := ctx.Deadline(); ok {
		c.nc.SetDeadline(d)
		defer c.nc.SetDeadline(time.Time{})
	}
	return c.Reset()
}
