package poseidon

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"poseidon/internal/query"
)

// seedPeople commits n Person nodes in batches.
func seedPeople(t testing.TB, db *DB, n int) {
	t.Helper()
	const batch = 5000
	for i := 0; i < n; i += batch {
		tx := db.Begin()
		for j := i; j < i+batch && j < n; j++ {
			if _, err := tx.CreateNode("Person", map[string]any{"v": int64(j)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

// scanAllPlan reads one property per Person node, so the scan touches
// (simulated) persistent memory for every record.
func scanAllPlan() *query.Plan {
	return &query.Plan{Root: &query.Project{
		Input: &query.NodeScan{Label: "Person"},
		Cols:  []query.Expr{&query.Prop{Col: 0, Key: "v"}},
	}}
}

// waitGoroutines polls until the goroutine count drops back to base.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d > baseline %d", runtime.NumGoroutine(), base)
}

// TestDeadlineCancelsAllModes is the acceptance scenario: a 1ms deadline
// on a long scan returns context.DeadlineExceeded in all four execution
// modes, the transaction is aborted, and no worker goroutine survives.
func TestDeadlineCancelsAllModes(t *testing.T) {
	db := openTestDB(t, PMem)
	seedPeople(t, db, 40000)
	plan := scanAllPlan()
	for _, em := range []ExecMode{Interpret, Parallel, JIT, Adaptive} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, err := db.QueryModeCtx(ctx, plan, nil, em)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("mode %d: err = %v, want DeadlineExceeded", em, err)
		}
		if n := db.Engine().ActiveTxs(); n != 0 {
			t.Fatalf("mode %d: %d transactions still active after cancellation", em, n)
		}
		waitGoroutines(t, base)
	}
	// The engine is unharmed: the same scan completes when given time.
	rows, err := db.Query(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 40000 {
		t.Fatalf("post-cancel scan found %d rows, want 40000", len(rows))
	}
}

// TestCancelMidStream cancels the context after consuming one row of a
// streaming cursor, in every execution mode.
func TestCancelMidStream(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedPeople(t, db, 20000)
	stmt, err := db.PreparePlan(scanAllPlan())
	if err != nil {
		t.Fatal(err)
	}
	for _, em := range []ExecMode{Interpret, Parallel, JIT, Adaptive} {
		base := runtime.NumGoroutine()
		sess := db.NewSession(SessionConfig{Mode: em})
		ctx, cancel := context.WithCancel(context.Background())
		rows, err := sess.Query(ctx, stmt, nil)
		if err != nil {
			t.Fatalf("mode %d: %v", em, err)
		}
		if !rows.Next() {
			t.Fatalf("mode %d: no first row (err %v)", em, rows.Err())
		}
		cancel()
		for rows.Next() {
			// Drain buffered batches until cancellation lands.
		}
		if err := rows.Err(); !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %d: Err = %v, want Canceled", em, err)
		}
		rows.Close()
		if n := db.Engine().ActiveTxs(); n != 0 {
			t.Fatalf("mode %d: %d transactions still active", em, n)
		}
		sess.Close()
		waitGoroutines(t, base)
	}
}

// TestExecCtxCancelledCommitsNothing checks that a cancelled update
// never half-applies: either everything or nothing becomes visible.
func TestExecCtxCancelledCommitsNothing(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedPeople(t, db, 1000)
	before := db.NodeCount()
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: Exec must refuse to commit anything
	plan := &query.Plan{Root: &query.CreateNode{
		Input: &query.NodeScan{Label: "Person"},
		Label: "Copy",
	}}
	if _, err := db.ExecCtx(ctx, plan, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if db.Engine().ActiveTxs() != 0 {
		t.Fatal("transaction leaked")
	}
	rows, err := db.Query(&query.Plan{Root: &query.NodeScan{Label: "Copy"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("%d Copy nodes visible after cancelled Exec", len(rows))
	}
	if db.NodeCount() != before {
		t.Fatalf("node count moved from %d to %d", before, db.NodeCount())
	}
}

// TestSessionTimeout checks the session-level default deadline.
func TestSessionTimeout(t *testing.T) {
	db := openTestDB(t, PMem)
	seedPeople(t, db, 40000)
	stmt, err := db.PreparePlan(scanAllPlan())
	if err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession(SessionConfig{Mode: Parallel, Timeout: time.Millisecond})
	defer sess.Close()
	if _, err := sess.QueryAll(context.Background(), stmt, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if n := db.Engine().ActiveTxs(); n != 0 {
		t.Fatalf("%d transactions still active", n)
	}
}
