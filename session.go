package poseidon

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/query"
	"poseidon/internal/trace"
)

// ErrSessionClosed is returned by operations on a closed Session.
var ErrSessionClosed = errors.New("poseidon: session is closed")

// ErrSessionLimit is returned by Begin/Query/Exec when the session
// already owns SessionConfig.MaxTxs live transactions. Callers holding
// open Rows cursors or explicit transactions must end some before
// starting more — the backpressure signal poseidond turns into a
// SESSION_LIMIT error frame.
var ErrSessionLimit = errors.New("poseidon: session transaction limit reached")

// ErrUpdatePlan is returned when an update plan reaches a read-only
// entry point (Query, QueryMode, Session.Query): their transaction is
// always rolled back, so the updates would silently vanish. Use Exec,
// Session.Exec, or QueryTx with an explicitly committed transaction.
var ErrUpdatePlan = errors.New("poseidon: plan contains updates but this entry point always rolls back its transaction; use Exec (or QueryTx and commit yourself)")

// SessionConfig pins per-session execution defaults.
type SessionConfig struct {
	// Mode is the execution mode for every statement the session runs
	// (default Interpret).
	Mode ExecMode
	// Timeout, when non-zero, is the default deadline applied to each
	// statement whose context carries no earlier deadline.
	Timeout time.Duration
	// Workers bounds Parallel/Adaptive execution (0 = the DB default).
	Workers int
	// MaxTxs, when positive, bounds how many transactions the session
	// may own at once — explicit Begins plus the implicit transactions
	// behind unfinished Query/Exec calls. Beyond the bound, Begin and
	// the statement entry points return ErrSessionLimit instead of
	// piling more work onto the engine (0 = unbounded).
	MaxTxs int
}

// Session is a lightweight execution scope over a DB: it pins an
// execution mode, a default statement deadline and a worker budget, and
// owns the transactions it starts. Closing the session rolls back every
// transaction still live — including those driving unfinished Rows
// cursors — so no work can leak past it. Sessions are cheap; open one
// per request or unit of work. A session must not be used from multiple
// goroutines concurrently, but any number of sessions can share a DB and
// its prepared-statement cache.
type Session struct {
	db  *DB
	cfg SessionConfig

	mu     sync.Mutex
	txs    map[*core.Tx]struct{}
	closed bool

	// lastTrace holds the most recent finished trace rooted by this
	// session (tracing enabled only); LastProfile derives from it.
	lastTrace atomic.Pointer[trace.Trace]
}

// NewSession opens a session with the given defaults.
func (db *DB) NewSession(cfg SessionConfig) *Session {
	if cfg.Workers == 0 {
		cfg.Workers = db.workers
	}
	if db.tel != nil {
		db.tel.sessionsActive.Add(1)
	}
	return &Session{db: db, cfg: cfg, txs: make(map[*core.Tx]struct{})}
}

// Begin starts a session-owned transaction. It behaves like DB.Begin,
// but Session.Close will roll it back if the caller has not ended it.
// With MaxTxs set, a session already at its bound gets ErrSessionLimit
// and no transaction is started.
func (s *Session) Begin() (*Tx, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	if s.cfg.MaxTxs > 0 && len(s.txs) >= s.cfg.MaxTxs {
		return nil, ErrSessionLimit
	}
	tx := s.db.engine.Begin()
	s.txs[tx] = struct{}{}
	return tx, nil
}

// track registers a transaction the session should reap on Close,
// enforcing the same MaxTxs bound as Begin.
func (s *Session) track(tx *core.Tx) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	if s.cfg.MaxTxs > 0 && len(s.txs) >= s.cfg.MaxTxs {
		return ErrSessionLimit
	}
	s.txs[tx] = struct{}{}
	return nil
}

// release forgets a transaction that has ended.
func (s *Session) release(tx *core.Tx) {
	s.mu.Lock()
	delete(s.txs, tx)
	s.mu.Unlock()
}

// Close rolls back every transaction the session still owns. Queries
// streaming from one of them observe ErrTxDone at their next record.
// Close is idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	txs := make([]*core.Tx, 0, len(s.txs))
	for tx := range s.txs {
		txs = append(txs, tx)
	}
	s.txs = nil
	s.mu.Unlock()
	if s.db.tel != nil {
		// Balanced with NewSession; the closed flag makes Close idempotent.
		s.db.tel.sessionsActive.Add(-1)
	}
	for _, tx := range txs {
		_ = tx.Abort()
	}
	return nil
}

// context applies the session's default deadline when ctx has none of
// its own. The returned cancel must be called when execution ends.
func (s *Session) context(ctx context.Context) (context.Context, context.CancelFunc) {
	if ctx == nil {
		//poseidonlint:ignore ctx-threading nil-ctx compatibility guard for legacy callers
		ctx = context.Background()
	}
	if s.cfg.Timeout > 0 {
		if _, has := ctx.Deadline(); !has {
			return context.WithTimeout(ctx, s.cfg.Timeout)
		}
	}
	return ctx, func() {}
}

// startSpan opens the session-level span for one statement. With a
// parent already in ctx (the server's wire span) the session span
// nests under it; otherwise a fresh trace is rooted here. Either way
// the trace's finish sink is pointed at the session, so LastProfile
// reflects the most recent statement — but an upstream sink (the
// server conn's) wins, since sinks bind at root creation.
func (s *Session) startSpan(ctx context.Context, name string) (context.Context, *trace.Span) {
	tracer := s.db.tracer
	if tracer == nil {
		return ctx, nil
	}
	if parent := trace.FromContext(ctx); parent != nil {
		sp := parent.Child(name, trace.KindSession)
		return trace.ContextWithSpan(ctx, sp), sp
	}
	ctx = trace.WithFinishSink(ctx, func(tr *trace.Trace) { s.lastTrace.Store(tr) })
	return tracer.Start(ctx, name, trace.KindSession)
}

// LastProfile returns the execution profile of the session's most
// recently finished statement, or nil when tracing is disabled or
// nothing has run yet. Remote sessions get the equivalent through the
// server's per-connection profile (graphshell :profile).
func (s *Session) LastProfile() *trace.Profile {
	return trace.BuildProfile(s.lastTrace.Load())
}

// Query runs a prepared statement in a fresh read-only snapshot and
// streams the result. The statement must not contain updates
// (ErrUpdatePlan otherwise): the snapshot is rolled back when the cursor
// is closed or exhausted. Cancelling ctx — or hitting the session's
// Timeout — aborts execution between records.
func (s *Session) Query(ctx context.Context, stmt *Stmt, params query.Params) (*Rows, error) {
	if stmt.plan.HasUpdates() {
		return nil, ErrUpdatePlan
	}
	cctx, cancelTimeout := s.context(ctx)
	cctx, span := s.startSpan(cctx, "session.query")
	bsp := span.Child("core.begin", trace.KindCommit)
	tx := s.db.engine.Begin()
	bsp.End()
	if err := s.track(tx); err != nil {
		tx.Abort()
		span.SetError(err)
		span.End()
		cancelTimeout()
		return nil, err
	}
	end := func() {
		tx.Abort()
		s.release(tx)
		cancelTimeout()
		// The session span covers the full streaming lifetime: it ends
		// when the cursor is exhausted or closed, not when the producer
		// starts.
		span.End()
	}
	return newRows(cctx, s.db, end, func(rctx context.Context, emit func(query.Row) bool) error {
		return stmt.run(rctx, tx, params, s.cfg.Mode, s.cfg.Workers, emit)
	}), nil
}

// QueryAll runs a statement and materializes the decoded result: the
// convenience wrapper over Query/Collect.
func (s *Session) QueryAll(ctx context.Context, stmt *Stmt, params query.Params) ([][]any, error) {
	rows, err := s.Query(ctx, stmt, params)
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}

// Exec runs a statement — typically containing updates — in a fresh
// session-owned transaction and commits it, returning the number of
// result rows. On any error, including ctx cancellation, the
// transaction is rolled back and nothing becomes visible.
func (s *Session) Exec(ctx context.Context, stmt *Stmt, params query.Params) (int, error) {
	cctx, cancelTimeout := s.context(ctx)
	defer cancelTimeout()
	cctx, span := s.startSpan(cctx, "session.exec")
	defer span.End()
	bsp := span.Child("core.begin", trace.KindCommit)
	tx := s.db.engine.Begin()
	bsp.End()
	if err := s.track(tx); err != nil {
		tx.Abort()
		span.SetError(err)
		return 0, err
	}
	defer s.release(tx)
	if span != nil {
		// Commit runs after stmt.run restores the tx context, so the
		// span must ride the transaction itself for the commit spans to
		// find it.
		tx.WithContext(cctx)
	}
	n := 0
	mode := s.cfg.Mode
	if mode == Parallel || mode == Adaptive {
		// Morsel workers share one transaction; updates stay on the
		// single-threaded interpreter for deterministic write ordering.
		mode = Interpret
	}
	if err := stmt.run(cctx, tx, params, mode, s.cfg.Workers, func(query.Row) bool { n++; return true }); err != nil {
		tx.Abort()
		span.SetError(err)
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		span.SetError(err)
		return 0, err
	}
	span.SetAttr("rows_affected", int64(n))
	return n, nil
}

// QueryTx streams a statement inside an existing transaction, so the
// query observes the transaction's uncommitted effects. The transaction
// is NOT ended when the cursor closes; committing remains the caller's
// job. The cursor must be exhausted or closed before the transaction is
// used again (the producer goroutine shares it).
func (s *Session) QueryTx(ctx context.Context, tx *Tx, stmt *Stmt, params query.Params) (*Rows, error) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return nil, ErrSessionClosed
	}
	cctx, cancelTimeout := s.context(ctx)
	cctx, span := s.startSpan(cctx, "session.query_tx")
	end := func() {
		cancelTimeout()
		span.End()
	}
	return newRows(cctx, s.db, end, func(rctx context.Context, emit func(query.Row) bool) error {
		return stmt.run(rctx, tx, params, s.cfg.Mode, s.cfg.Workers, emit)
	}), nil
}
