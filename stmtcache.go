package poseidon

import (
	"container/list"
	"sync"
)

// CacheStats reports prepared-statement cache effectiveness. Retrieve it
// with DB.CacheStats.
type CacheStats struct {
	Hits      uint64 // lookups answered from the cache
	Misses    uint64 // lookups that had to parse/plan/prepare
	Evictions uint64 // entries dropped by the LRU bound
	Size      int    // entries currently cached
}

// stmtCache is a mutex-guarded LRU of prepared statements, keyed by the
// Cypher fingerprint or the plan signature. It is shared by every
// session of a DB: preparing the same statement twice costs one
// parse/plan, regardless of which session asks.
type stmtCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	stmt *Stmt
}

func newStmtCache(capacity int) *stmtCache {
	return &stmtCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached statement for key, promoting it to most
// recently used. The miss is counted here so that concurrent builders of
// the same statement each register the work they are about to do.
func (c *stmtCache) get(key string) (*Stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).stmt, true
	}
	c.misses++
	return nil, false
}

// put inserts a statement, evicting from the LRU tail past capacity. If
// another goroutine raced the same key in, its entry wins and is
// returned, so all callers share one statement.
func (c *stmtCache) put(key string, stmt *Stmt) *Stmt {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry).stmt
	}
	el := c.ll.PushFront(&cacheEntry{key: key, stmt: stmt})
	c.items[key] = el
	for c.cap > 0 && c.ll.Len() > c.cap {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*cacheEntry).key)
		c.evictions++
	}
	return stmt
}

// purge drops every entry (but keeps the counters): used when the set of
// secondary indexes changes, since the planner's access-path choice
// depends on it.
func (c *stmtCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

func (c *stmtCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
	}
}
