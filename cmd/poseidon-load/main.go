// Command poseidon-load is an LDBC-driver-style load harness for
// poseidond: it simulates many concurrent clients, each on its own TCP
// connection, driving the built-in "ldbc:srN"/"ldbc:iuN" workload
// statements in a configurable short-read / interactive-update mix.
//
// Usage:
//
//	poseidon-load -addr host:7687 [-clients 1000] [-duration 15s]
//	              [-mix sr=80,iu=20] [-think 0] [-persons 1000] [-seed 42]
//	              [-mode default] [-warmup 2s] [-reconnect] [-strict]
//	              [-trace] [-json BENCH_PR7.json]
//
// With -trace every request carries a propagated trace ID; the report
// lists the top-5 slowest ops per class with their IDs (look them up at
// the server's /debug/traces or via "sys:trace:<id>") and verifies the
// server can still export them, counting trace_export_failures in the
// error taxonomy.
//
// Closed loop by default: each client issues its next request as soon
// as the previous one completes; -think inserts an exponentially
// jittered pause (open-loop-ish arrivals). -persons/-seed must match
// the server's preload flags — the harness regenerates the same
// dataset locally to draw valid query parameters, and partitions the
// fresh-insert id space per client so updates never collide on
// business ids.
//
// Error accounting is deliberately strict about what counts as broken:
// MVTO CONFLICT aborts and QUEUE_FULL/DRAINING shedding are expected
// workload outcomes and tallied separately; connection drops are
// transport errors (with -reconnect the client redials and goes on,
// surviving a server drain/restart mid-run); protocol_errors counts
// malformed or unexpected frames only and must be zero on a healthy
// run. -strict exits nonzero if it is not.
//
// -json writes schema "poseidon-load/v1": the configuration, totals,
// and per-class (sr/iu) throughput and latency percentiles.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/client"
	"poseidon/internal/ldbc"
	"poseidon/internal/query"
	"poseidon/internal/trace"
	"poseidon/internal/wire"
)

type cfg struct {
	addr      string
	clients   int
	duration  time.Duration
	warmup    time.Duration
	think     time.Duration
	srPct     int
	persons   int
	seed      int64
	mode      string
	reconnect bool
	strict    bool
	traceOn   bool
	jsonPath  string
}

// slowOp is one of the slowest requests of a class: its latency, the
// statement it ran, and (with -trace) the trace ID the server retains
// it under — the handle into /debug/traces or "sys:trace:<id>".
type slowOp struct {
	LatMs   float64 `json:"lat_ms"`
	Stmt    string  `json:"stmt"`
	TraceID string  `json:"trace_id,omitempty"`
}

// slowTop is how many slowest ops are kept per class.
const slowTop = 5

// addSlow inserts op into the descending-by-latency top-k list.
func addSlow(list []slowOp, op slowOp) []slowOp {
	i := sort.Search(len(list), func(i int) bool { return list[i].LatMs < op.LatMs })
	if i >= slowTop {
		return list
	}
	list = append(list, slowOp{})
	copy(list[i+1:], list[i:])
	list[i] = op
	if len(list) > slowTop {
		list = list[:slowTop]
	}
	return list
}

// counters aggregates one client's outcomes; merged after the run.
type counters struct {
	ops        [2]uint64 // by class
	conflicts  uint64
	shed       uint64 // QUEUE_FULL
	drained    uint64 // DRAINING
	serverErrs uint64 // other server error frames
	transport  uint64
	reconnects uint64
	protocol   uint64
	lat        [2][]float64 // seconds, by class
	slow       [2][]slowOp  // top slowTop by class, descending
}

const (
	classSR = 0
	classIU = 1
)

var classNames = [2]string{"sr", "iu"}

func parseMix(s string) (srPct int, err error) {
	srPct = -1
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return 0, fmt.Errorf("bad mix element %q", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 100 {
			return 0, fmt.Errorf("bad mix percentage %q", part)
		}
		switch k {
		case "sr":
			srPct = n
		case "iu":
			if srPct < 0 {
				srPct = 100 - n
			}
		default:
			return 0, fmt.Errorf("unknown mix class %q", k)
		}
	}
	if srPct < 0 {
		return 0, fmt.Errorf("mix %q names no class", s)
	}
	return srPct, nil
}

func modeByte(s string) (uint8, error) {
	switch strings.ToLower(s) {
	case "", "default":
		return wire.ModeDefault, nil
	case "interpret":
		return 0, nil
	case "parallel":
		return 1, nil
	case "jit":
		return 2, nil
	case "adaptive":
		return 3, nil
	}
	return 0, fmt.Errorf("unknown mode %q", s)
}

func main() {
	var c cfg
	var mix string
	flag.StringVar(&c.addr, "addr", "127.0.0.1:7687", "poseidond address")
	flag.IntVar(&c.clients, "clients", 1000, "concurrent simulated clients (one TCP connection each)")
	flag.DurationVar(&c.duration, "duration", 15*time.Second, "measured run length")
	flag.DurationVar(&c.warmup, "warmup", 2*time.Second, "unmeasured warmup before the run")
	flag.DurationVar(&c.think, "think", 0, "mean think time between requests (0 = closed loop)")
	flag.StringVar(&mix, "mix", "sr=80,iu=20", "workload mix (percent)")
	flag.IntVar(&c.persons, "persons", 1000, "server dataset scale (must match poseidond -persons)")
	flag.Int64Var(&c.seed, "seed", 42, "server dataset seed (must match poseidond -seed)")
	flag.StringVar(&c.mode, "mode", "default", "execution mode pin: default, interpret, parallel, jit, adaptive")
	flag.BoolVar(&c.reconnect, "reconnect", false, "redial on connection loss (survives a server drain/restart)")
	flag.BoolVar(&c.strict, "strict", false, "exit 1 on any protocol error")
	flag.BoolVar(&c.traceOn, "trace", false, "propagate trace IDs and report the slowest ops per class with theirs")
	flag.StringVar(&c.jsonPath, "json", "", "write the machine-readable result here")
	flag.Parse()

	srPct, err := parseMix(mix)
	if err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-load:", err)
		os.Exit(2)
	}
	c.srPct = srPct
	mb, err := modeByte(c.mode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "poseidon-load:", err)
		os.Exit(2)
	}

	// The same generator config the server preloaded with: identical id
	// pools, so every drawn parameter hits a real entity.
	ds := ldbc.Generate(ldbc.Config{Persons: c.persons, Seed: c.seed})
	srQ, iuQ := ldbc.SRQueries(), ldbc.IUQueries()

	opts := client.Options{UserAgent: "poseidon-load"}
	if mb != wire.ModeDefault {
		opts.Mode = &mb
	}
	if c.traceOn {
		// One tracer shared by every simulated client: the harness only
		// needs it to mint and propagate IDs, so the local ring is tiny
		// and the sample rate irrelevant to what the server retains.
		opts.Tracer = trace.New(trace.Config{RingSize: 16, SampleRate: 0})
	}

	fmt.Printf("poseidon-load: addr=%s clients=%d duration=%v mix=sr:%d/iu:%d think=%v persons=%d\n",
		c.addr, c.clients, c.duration, c.srPct, 100-c.srPct, c.think, c.persons)

	var measuring atomic.Bool
	stop := make(chan struct{})
	results := make([]counters, c.clients)
	var wg sync.WaitGroup
	for i := 0; i < c.clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runClient(&c, i, ds, srQ, iuQ, opts, &measuring, stop, &results[i])
		}(i)
	}

	time.Sleep(c.warmup)
	measuring.Store(true)
	start := time.Now()
	time.Sleep(c.duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()

	report(&c, opts, results, elapsed)
}

// verifyTraceExports asks the server for each slow op's trace via
// "sys:trace:<id>" on a fresh connection. Traces the server no longer
// retains — or a failed export request — count as export failures.
func verifyTraceExports(c *cfg, opts client.Options, slow [2][]slowOp) uint64 {
	var ids []string
	for cl := 0; cl < 2; cl++ {
		for _, s := range slow[cl] {
			if s.TraceID != "" {
				ids = append(ids, s.TraceID)
			}
		}
	}
	if len(ids) == 0 {
		return 0
	}
	conn, err := client.Dial(c.addr, opts)
	if err != nil {
		return uint64(len(ids))
	}
	defer conn.Close()
	var failed uint64
	for _, id := range ids {
		meta, err := conn.Sys("trace:" + id)
		if err != nil {
			failed++
			continue
		}
		if s, _ := meta["trace"].(string); s == "" {
			failed++
		}
	}
	return failed
}

// runClient is one simulated client: dial, then issue requests until
// stop closes. Latencies are only recorded while measuring is set.
func runClient(c *cfg, id int, ds *ldbc.Dataset, srQ, iuQ []ldbc.QueryID,
	opts client.Options, measuring *atomic.Bool, stop chan struct{}, out *counters) {
	rng := rand.New(rand.NewSource(c.seed + int64(id)*7919))
	pg := ldbc.NewParamGen(ds, c.seed+int64(id))
	pg.Partition(id + 1)

	conn := dialRetry(c, opts, out, stop)
	if conn == nil {
		return
	}
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()

	for {
		select {
		case <-stop:
			return
		default:
		}
		if c.think > 0 {
			d := time.Duration(rng.ExpFloat64() * float64(c.think))
			select {
			case <-time.After(d):
			case <-stop:
				return
			}
		}

		class := classIU
		if rng.Intn(100) < c.srPct {
			class = classSR
		}
		var stmt string
		var params query.Params
		if class == classSR {
			q := srQ[rng.Intn(len(srQ))]
			stmt = "ldbc:sr" + q.Name()
			params = pg.SRParams(q)
		} else {
			q := iuQ[rng.Intn(len(iuQ))]
			stmt = "ldbc:iu" + q.Name()
			params = pg.IUParams(q)
		}

		t0 := time.Now()
		var err error
		if class == classSR {
			_, err = conn.QueryText(stmt, params)
		} else {
			_, err = conn.ExecText(stmt, params)
		}
		lat := time.Since(t0)

		record := measuring.Load()
		switch {
		case err == nil:
			if record {
				out.ops[class]++
				out.lat[class] = append(out.lat[class], lat.Seconds())
				out.slow[class] = addSlow(out.slow[class], slowOp{
					LatMs: lat.Seconds() * 1e3, Stmt: stmt, TraceID: conn.LastTraceID(),
				})
			}
		case client.IsCode(err, wire.CodeConflict):
			if record {
				out.conflicts++
			}
		case client.IsCode(err, wire.CodeQueueFull):
			if record {
				out.shed++
			}
		case client.IsCode(err, wire.CodeDraining):
			if record {
				out.drained++
			}
			// The server is going away; fall through to a reconnect so
			// the client survives the restart.
			if c.reconnect {
				conn.Close()
				conn = dialRetry(c, opts, out, stop)
				if conn == nil {
					return
				}
			}
		default:
			if _, ok := err.(*client.ServerError); ok {
				// An unexpected but well-formed server error.
				out.serverErrs++
				continue
			}
			if conn.Broken() {
				out.transport++
				conn.Close()
				if !c.reconnect {
					return
				}
				conn = dialRetry(c, opts, out, stop)
				if conn == nil {
					return
				}
				continue
			}
			// Well-framed connection, inexplicable client-side failure:
			// that is a protocol bug.
			out.protocol++
		}
	}
}

// dialRetry dials until it succeeds or stop closes; transient failures
// (e.g. the server restarting mid-drain) are retried with backoff.
func dialRetry(c *cfg, opts client.Options, out *counters, stop chan struct{}) *client.Conn {
	backoff := 10 * time.Millisecond
	for attempt := 0; ; attempt++ {
		conn, err := client.Dial(c.addr, opts)
		if err == nil {
			if attempt > 0 {
				out.reconnects++
			}
			return conn
		}
		if !c.reconnect && attempt >= 10 {
			out.transport++
			return nil
		}
		select {
		case <-time.After(backoff):
		case <-stop:
			return nil
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// classStats is the per-class slice of the JSON report.
type classStats struct {
	Ops        uint64  `json:"ops"`
	Throughput float64 `json:"throughput_per_sec"`
	P50Ms      float64 `json:"p50_ms"`
	P95Ms      float64 `json:"p95_ms"`
	P99Ms      float64 `json:"p99_ms"`
	MeanMs     float64 `json:"mean_ms"`
	MaxMs      float64 `json:"max_ms"`
}

type result struct {
	Schema     string    `json:"schema"`
	Timestamp  time.Time `json:"timestamp"`
	Addr       string    `json:"addr"`
	Clients    int       `json:"clients"`
	DurationS  float64   `json:"duration_s"`
	MixSRPct   int       `json:"mix_sr_pct"`
	ThinkMs    float64   `json:"think_ms"`
	Persons    int       `json:"persons"`
	Seed       int64     `json:"seed"`
	Mode       string    `json:"mode"`
	Ops        uint64    `json:"ops"`
	Throughput float64   `json:"throughput_per_sec"`

	Classes map[string]classStats `json:"classes"`

	Conflicts      uint64 `json:"conflicts"`
	QueueFull      uint64 `json:"queue_full"`
	Draining       uint64 `json:"draining"`
	ServerErrors   uint64 `json:"server_errors"`
	TransportErrs  uint64 `json:"transport_errors"`
	Reconnects     uint64 `json:"reconnects"`
	ProtocolErrors uint64 `json:"protocol_errors"`
	// TraceExportFailures counts traced slow ops whose server-side trace
	// could not be exported afterwards (evicted, sampled out, or the
	// export request itself failed). Part of the error taxonomy so a
	// traced run that loses its evidence is visibly degraded, but not a
	// protocol error: eviction under pressure is by design.
	TraceExportFailures uint64 `json:"trace_export_failures"`

	// Slowest lists the slowTop slowest successful ops per class with
	// their trace IDs (with -trace), newest-run data only.
	Slowest map[string][]slowOp `json:"slowest,omitempty"`
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func report(c *cfg, opts client.Options, results []counters, elapsed time.Duration) {
	var total counters
	lat := [2][]float64{}
	for i := range results {
		r := &results[i]
		for cl := 0; cl < 2; cl++ {
			total.ops[cl] += r.ops[cl]
			lat[cl] = append(lat[cl], r.lat[cl]...)
			for _, s := range r.slow[cl] {
				total.slow[cl] = addSlow(total.slow[cl], s)
			}
		}
		total.conflicts += r.conflicts
		total.shed += r.shed
		total.drained += r.drained
		total.serverErrs += r.serverErrs
		total.transport += r.transport
		total.reconnects += r.reconnects
		total.protocol += r.protocol
	}

	out := result{
		Schema:    "poseidon-load/v1",
		Timestamp: time.Now().UTC(),
		Addr:      c.addr, Clients: c.clients,
		DurationS: elapsed.Seconds(), MixSRPct: c.srPct,
		ThinkMs: float64(c.think) / float64(time.Millisecond),
		Persons: c.persons, Seed: c.seed, Mode: c.mode,
		Ops:       total.ops[0] + total.ops[1],
		Classes:   map[string]classStats{},
		Conflicts: total.conflicts, QueueFull: total.shed, Draining: total.drained,
		ServerErrors: total.serverErrs, TransportErrs: total.transport,
		Reconnects: total.reconnects, ProtocolErrors: total.protocol,
	}
	out.Throughput = float64(out.Ops) / elapsed.Seconds()

	for cl := 0; cl < 2; cl++ {
		ls := lat[cl]
		sort.Float64s(ls)
		st := classStats{
			Ops:        total.ops[cl],
			Throughput: float64(total.ops[cl]) / elapsed.Seconds(),
			P50Ms:      percentile(ls, 50) * 1e3,
			P95Ms:      percentile(ls, 95) * 1e3,
			P99Ms:      percentile(ls, 99) * 1e3,
			MaxMs:      percentile(ls, 100) * 1e3,
		}
		if len(ls) > 0 {
			sum := 0.0
			for _, v := range ls {
				sum += v
			}
			st.MeanMs = sum / float64(len(ls)) * 1e3
		}
		out.Classes[classNames[cl]] = st
	}

	// With -trace, check the slowest ops' traces are still exportable
	// from the server; every one that is not counts as an export failure.
	out.Slowest = map[string][]slowOp{}
	for cl := 0; cl < 2; cl++ {
		if len(total.slow[cl]) > 0 {
			out.Slowest[classNames[cl]] = total.slow[cl]
		}
	}
	if c.traceOn {
		out.TraceExportFailures = verifyTraceExports(c, opts, total.slow)
	}

	fmt.Printf("\n%-6s %10s %10s %9s %9s %9s %9s\n", "class", "ops", "ops/s", "p50 ms", "p95 ms", "p99 ms", "mean ms")
	for _, name := range classNames {
		st := out.Classes[name]
		fmt.Printf("%-6s %10d %10.0f %9.2f %9.2f %9.2f %9.2f\n",
			name, st.Ops, st.Throughput, st.P50Ms, st.P95Ms, st.P99Ms, st.MeanMs)
	}
	fmt.Printf("total  %10d %10.0f  conflicts=%d queue_full=%d draining=%d server_errs=%d transport=%d reconnects=%d protocol=%d trace_export_failures=%d\n",
		out.Ops, out.Throughput, out.Conflicts, out.QueueFull, out.Draining,
		out.ServerErrors, out.TransportErrs, out.Reconnects, out.ProtocolErrors,
		out.TraceExportFailures)
	for cl := 0; cl < 2; cl++ {
		for i, s := range total.slow[cl] {
			id := s.TraceID
			if id == "" {
				id = "-"
			}
			fmt.Printf("slowest %s #%d: %8.2f ms  %-16s trace=%s\n",
				classNames[cl], i+1, s.LatMs, s.Stmt, id)
		}
	}

	if c.jsonPath != "" {
		data, err := json.MarshalIndent(&out, "", "  ")
		if err == nil {
			err = os.WriteFile(c.jsonPath, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "poseidon-load: json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", c.jsonPath)
	}

	if c.strict && out.ProtocolErrors > 0 {
		fmt.Fprintf(os.Stderr, "poseidon-load: %d protocol errors\n", out.ProtocolErrors)
		os.Exit(1)
	}
}
