// Command poseidond serves a Poseidon graph database over the framed
// wire protocol (see internal/wire and DESIGN.md).
//
// Usage:
//
//	poseidond [-listen :7687] [-metrics :7688] [-mode adaptive]
//	          [-dram] [-shards N] [-persons N] [-seed S]
//	          [-max-inflight N] [-max-queue N] [-queue-timeout D]
//	          [-stmt-timeout D] [-drain-timeout D] [-session-max-txs N]
//	          [-trace] [-trace-sample P] [-trace-ring N] [-trace-slow D]
//
// With -persons > 0 the server preloads an LDBC-style SNB dataset (and
// its workload indexes) before listening, so remote load harnesses can
// immediately drive the "ldbc:srN"/"ldbc:iuN" built-in statements.
// SIGTERM/SIGINT starts a graceful drain: in-flight statements finish,
// new RUN/BEGIN requests are rejected with DRAINING, and the process
// exits once the last statement completes or -drain-timeout expires.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"poseidon"
	"poseidon/internal/index"
	"poseidon/internal/ldbc"
	"poseidon/internal/server"
)

// version labels the poseidon_build_info gauge; override at build time
// with -ldflags "-X main.version=...".
var version = "dev"

func parseMode(s string) (poseidon.ExecMode, error) {
	switch strings.ToLower(s) {
	case "interpret":
		return poseidon.Interpret, nil
	case "parallel":
		return poseidon.Parallel, nil
	case "jit":
		return poseidon.JIT, nil
	case "adaptive":
		return poseidon.Adaptive, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want interpret, parallel, jit or adaptive)", s)
}

func main() {
	listen := flag.String("listen", ":7687", "wire-protocol listen address")
	metricsAddr := flag.String("metrics", "", "serve /metrics and /debug on this address (empty = off)")
	mode := flag.String("mode", "adaptive", "default execution mode: interpret, parallel, jit, adaptive")
	dram := flag.Bool("dram", false, "use the DRAM engine instead of simulated pmem")
	shards := flag.Int("shards", 0, "engine shard count (0 = GOMAXPROCS)")
	poolMB := flag.Int("pool-mb", 512, "device pool size in MiB")
	workers := flag.Int("workers", 0, "parallel/adaptive workers (0 = GOMAXPROCS)")
	persons := flag.Int("persons", 0, "preload an LDBC dataset at this scale (0 = empty database)")
	seed := flag.Int64("seed", 42, "LDBC dataset seed")
	maxInflight := flag.Int("max-inflight", 64, "statements executing concurrently before admission queues")
	maxQueue := flag.Int("max-queue", 0, "RUNs allowed to wait for a slot (0 = max-inflight)")
	queueTimeout := flag.Duration("queue-timeout", 250*time.Millisecond, "longest a queued RUN waits before QUEUE_FULL")
	stmtTimeout := flag.Duration("stmt-timeout", 30*time.Second, "per-statement deadline")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain deadline on SIGTERM")
	sessionMaxTxs := flag.Int("session-max-txs", 8, "live transactions per connection before SESSION_LIMIT")
	traceOn := flag.Bool("trace", false, "enable request tracing (spans wire→commit; export at /debug/traces)")
	traceSample := flag.Float64("trace-sample", 0.1, "tail-sampling keep probability for unremarkable traces")
	traceRing := flag.Int("trace-ring", 0, "retained-trace ring size (0 = default 256)")
	traceSlow := flag.Duration("trace-slow", 0, "pin traces at least this slow (0 = slow-query threshold)")
	flag.Parse()

	execMode, err := parseMode(*mode)
	if err != nil {
		log.Fatalf("poseidond: %v", err)
	}

	dbMode := poseidon.PMem
	if *dram {
		dbMode = poseidon.DRAM
	}
	db, err := poseidon.Open(poseidon.Config{
		Mode:     dbMode,
		PoolSize: *poolMB << 20,
		Workers:  *workers,
		Shards:   *shards,
		Telemetry: poseidon.TelemetryConfig{
			Enabled: true,
			Trace: poseidon.TraceConfig{
				Enabled:       *traceOn,
				RingSize:      *traceRing,
				SampleRate:    *traceSample,
				SlowThreshold: *traceSlow,
			},
		},
	})
	if err != nil {
		log.Fatalf("poseidond: open: %v", err)
	}
	defer db.Close()

	if *persons > 0 {
		start := time.Now()
		ds := ldbc.Generate(ldbc.Config{Persons: *persons, Seed: *seed})
		if err := ds.LoadCore(db.Engine(), true, index.Hybrid); err != nil {
			log.Fatalf("poseidond: load ldbc: %v", err)
		}
		log.Printf("poseidond: loaded ldbc persons=%d (%d nodes, %d edges, indexed) in %v",
			*persons, len(ds.Nodes), len(ds.Edges), time.Since(start).Round(time.Millisecond))
	}

	srv, err := server.New(server.Config{
		DB:            db,
		Mode:          execMode,
		StmtTimeout:   *stmtTimeout,
		MaxInflight:   *maxInflight,
		MaxQueue:      *maxQueue,
		QueueTimeout:  *queueTimeout,
		SessionMaxTxs: *sessionMaxTxs,
		Version:       version,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("poseidond: %v", err)
	}

	if *metricsAddr != "" {
		go func() {
			log.Printf("poseidond: metrics on http://%s/metrics", *metricsAddr)
			if err := http.ListenAndServe(*metricsAddr, db.DebugMux()); err != nil {
				log.Printf("poseidond: metrics server: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("poseidond: listen: %v", err)
	}
	log.Printf("poseidond: version=%s mode=%s engine=%s listening on %s (max-inflight=%d)",
		version, execMode, dbMode, l.Addr(), *maxInflight)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(l) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		log.Printf("poseidond: %v: draining (timeout %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("poseidond: drain cut short: %v", err)
			os.Exit(1)
		}
		log.Printf("poseidond: drained cleanly")
	case err := <-errCh:
		if err != nil {
			log.Fatalf("poseidond: serve: %v", err)
		}
	}
}
