// Command poseidon-bench regenerates the paper's evaluation figures
// (Fig 5-10) as text tables.
//
// Usage:
//
//	poseidon-bench [-persons N] [-runs N] [-workers N] [-fig 5|6|7|8|9|10|all]
//
// Absolute times depend on the simulated device latencies; the shapes
// (who wins, by roughly what factor) are the reproduction target. See
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"poseidon/internal/bench"
)

func main() {
	persons := flag.Int("persons", 500, "dataset scale (number of persons; SNB ratios derive the rest)")
	runs := flag.Int("runs", 20, "measured repetitions per query (the paper uses 50)")
	workers := flag.Int("workers", 0, "parallel/adaptive workers (0 = GOMAXPROCS)")
	fig := flag.String("fig", "all", "which figure to regenerate: 5, 6, 7, 8, 9, 10, ablations or all")
	seed := flag.Int64("seed", 42, "dataset and parameter seed")
	flag.Parse()

	fmt.Printf("poseidon-bench: persons=%d runs=%d workers=%d GOMAXPROCS=%d\n",
		*persons, *runs, *workers, runtime.GOMAXPROCS(0))
	start := time.Now()
	s, err := bench.NewSetup(bench.Options{
		Persons: *persons, Runs: *runs, Workers: *workers, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	defer s.Close()
	fmt.Printf("loaded %d nodes, %d edges into pmem, dram and disk engines in %v\n\n",
		len(s.DS.Nodes), len(s.DS.Edges), time.Since(start).Round(time.Millisecond))

	figures := map[string]func() (*bench.Table, error){
		"5": s.Fig5, "6": s.Fig6, "7": s.Fig7, "8": s.Fig8, "9": s.Fig9, "10": s.Fig10,
		"ablations": s.Ablations,
	}
	order := []string{"5", "6", "7", "8", "9", "10", "ablations"}

	run := func(name string) {
		f, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
		t0 := time.Now()
		tbl, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(regenerated in %v)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	if *fig == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*fig)
}
