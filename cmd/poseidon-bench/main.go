// Command poseidon-bench regenerates the paper's evaluation figures
// (Fig 5-10) as text tables.
//
// Usage:
//
//	poseidon-bench [-persons N] [-runs N] [-workers N] [-fig 5|6|7|8|9|10|stream|all]
//
// The extra "stream" figure compares materialized vs streamed result
// delivery through the public session API (not part of the paper).
//
// Absolute times depend on the simulated device latencies; the shapes
// (who wins, by roughly what factor) are the reproduction target. See
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"poseidon"
	"poseidon/internal/bench"
	"poseidon/internal/query"
)

func main() {
	persons := flag.Int("persons", 500, "dataset scale (number of persons; SNB ratios derive the rest)")
	runs := flag.Int("runs", 20, "measured repetitions per query (the paper uses 50)")
	workers := flag.Int("workers", 0, "parallel/adaptive workers (0 = GOMAXPROCS)")
	fig := flag.String("fig", "all", "which figure to regenerate: 5, 6, 7, 8, 9, 10, ablations or all")
	seed := flag.Int64("seed", 42, "dataset and parameter seed")
	flag.Parse()

	fmt.Printf("poseidon-bench: persons=%d runs=%d workers=%d GOMAXPROCS=%d\n",
		*persons, *runs, *workers, runtime.GOMAXPROCS(0))
	start := time.Now()
	s, err := bench.NewSetup(bench.Options{
		Persons: *persons, Runs: *runs, Workers: *workers, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	defer s.Close()
	fmt.Printf("loaded %d nodes, %d edges into pmem, dram and disk engines in %v\n\n",
		len(s.DS.Nodes), len(s.DS.Edges), time.Since(start).Round(time.Millisecond))

	figures := map[string]func() (*bench.Table, error){
		"5": s.Fig5, "6": s.Fig6, "7": s.Fig7, "8": s.Fig8, "9": s.Fig9, "10": s.Fig10,
		"ablations": s.Ablations,
		"stream":    func() (*bench.Table, error) { return streamFigure(*runs) },
	}
	order := []string{"5", "6", "7", "8", "9", "10", "ablations", "stream"}

	run := func(name string) {
		f, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
		t0 := time.Now()
		tbl, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(regenerated in %v)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	if *fig == "all" {
		for _, name := range order {
			run(name)
		}
		return
	}
	run(*fig)
}

// streamFigure compares materialized ([][]any via DB.Query) against
// streamed (Session.Query + Rows, raw values) delivery of a 100k-node
// scan through the public API.
func streamFigure(runs int) (*bench.Table, error) {
	db, err := poseidon.Open(poseidon.Config{Mode: poseidon.DRAM, PoolSize: 512 << 20})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	const nodes = 100000
	const batch = 10000
	for i := 0; i < nodes; i += batch {
		tx := db.Begin()
		for j := i; j < i+batch; j++ {
			if _, err := tx.CreateNode("Person", map[string]any{"v": int64(j)}); err != nil {
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	plan := &query.Plan{Root: &query.Project{
		Input: &query.NodeScan{Label: "Person"},
		Cols:  []query.Expr{&query.Prop{Col: 0, Key: "v"}},
	}}
	stmt, err := db.PreparePlan(plan)
	if err != nil {
		return nil, err
	}
	sess := db.NewSession(poseidon.SessionConfig{})
	defer sess.Close()

	runMat := func() error {
		rows, err := db.Query(plan, nil)
		if err != nil {
			return err
		}
		if len(rows) != nodes {
			return fmt.Errorf("materialized %d rows", len(rows))
		}
		return nil
	}
	runStr := func() error {
		rows, err := sess.Query(context.Background(), stmt, nil)
		if err != nil {
			return err
		}
		n := 0
		for rows.Next() {
			_ = rows.Row()
			n++
		}
		if err := rows.Close(); err != nil {
			return err
		}
		if n != nodes {
			return fmt.Errorf("streamed %d rows", n)
		}
		return nil
	}
	// Interleave the two variants so GC pauses (the materialized path
	// allocates ~60 MB per run) spread evenly instead of all landing on
	// whichever variant runs second.
	var matTotal, strTotal time.Duration
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		if err := runMat(); err != nil {
			return nil, err
		}
		matTotal += time.Since(t0)
		t0 = time.Now()
		if err := runStr(); err != nil {
			return nil, err
		}
		strTotal += time.Since(t0)
	}
	krows := func(total time.Duration) float64 {
		return float64(nodes) * float64(runs) / total.Seconds() / 1e3
	}
	mat, str := krows(matTotal), krows(strTotal)
	return &bench.Table{
		Name:    "streamed vs materialized result delivery (krows/s, 100k-node scan)",
		Columns: []string{"materialized", "streamed"},
		Rows: []bench.TableRow{{
			Query: "scan100k",
			Cells: map[string]float64{"materialized": mat, "streamed": str},
		}},
		Notes: []string{
			"materialized decodes every value into [][]any before returning",
			"streamed pulls raw rows through a Session/Rows cursor as the scan runs",
		},
	}, nil
}
