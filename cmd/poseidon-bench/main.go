// Command poseidon-bench regenerates the paper's evaluation figures
// (Fig 5-10) as text tables.
//
// Usage:
//
//	poseidon-bench [-persons N] [-runs N] [-workers N] [-fig 5|6|7|8|9|10|stream|all]
//	               [-json out.json] [-checkjson out.json]
//
// The extra "stream" figure compares materialized vs streamed result
// delivery through the public session API, and "traceoverhead" measures
// the cost of request tracing against the nil-handle disabled path
// (neither is part of the paper).
//
// -json writes a machine-readable result (schema poseidon-bench/v1):
// the configuration, every regenerated figure with mean/p50/p95/min/max
// per cell, and a final telemetry snapshot from a probe workload on an
// instrumented DB. -checkjson validates such a file and exits — CI uses
// the pair as its smoke contract.
//
// Absolute times depend on the simulated device latencies; the shapes
// (who wins, by roughly what factor) are the reproduction target. See
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"poseidon"
	"poseidon/internal/bench"
	"poseidon/internal/core"
	"poseidon/internal/query"
)

func main() {
	persons := flag.Int("persons", 500, "dataset scale (number of persons; SNB ratios derive the rest)")
	runs := flag.Int("runs", 20, "measured repetitions per query (the paper uses 50)")
	workers := flag.Int("workers", 0, "parallel/adaptive workers (0 = GOMAXPROCS)")
	fig := flag.String("fig", "all", "which figure to regenerate: 5, 6, 7, 8, 9, 10, ablations, stream, saturation, ingest, traceoverhead or all")
	seed := flag.Int64("seed", 42, "dataset and parameter seed")
	jsonPath := flag.String("json", "", "also write a machine-readable result to this path")
	checkPath := flag.String("checkjson", "", "validate a previously written -json file and exit")
	flag.Parse()

	if *checkPath != "" {
		data, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkjson:", err)
			os.Exit(1)
		}
		r, err := bench.ValidateJSON(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkjson:", err)
			os.Exit(1)
		}
		fmt.Printf("checkjson: %s ok (%d figures, metrics present)\n", *checkPath, len(r.Figures))
		return
	}

	fmt.Printf("poseidon-bench: persons=%d runs=%d workers=%d GOMAXPROCS=%d\n",
		*persons, *runs, *workers, runtime.GOMAXPROCS(0))
	start := time.Now()
	s, err := bench.NewSetup(bench.Options{
		Persons: *persons, Runs: *runs, Workers: *workers, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "setup:", err)
		os.Exit(1)
	}
	s.Ctx = context.Background()
	defer s.Close()
	fmt.Printf("loaded %d nodes, %d edges into pmem, dram and disk engines in %v\n\n",
		len(s.DS.Nodes), len(s.DS.Edges), time.Since(start).Round(time.Millisecond))

	figures := map[string]func() (*bench.Table, error){
		"5": s.Fig5, "6": s.Fig6, "7": s.Fig7, "8": s.Fig8, "9": s.Fig9, "10": s.Fig10,
		"ablations":     s.Ablations,
		"stream":        func() (*bench.Table, error) { return streamFigure(*runs) },
		"saturation":    func() (*bench.Table, error) { return bench.Saturation(s.Opts) },
		"ingest":        func() (*bench.Table, error) { return bench.Ingest(s.Opts) },
		"traceoverhead": func() (*bench.Table, error) { return traceFigure(*runs) },
	}
	order := []string{"5", "6", "7", "8", "9", "10", "ablations", "stream", "saturation", "ingest", "traceoverhead"}

	var collected []*bench.Table
	run := func(name string) {
		f, ok := figures[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q\n", name)
			os.Exit(2)
		}
		t0 := time.Now()
		tbl, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig %s: %v\n", name, err)
			os.Exit(1)
		}
		collected = append(collected, tbl)
		fmt.Print(tbl.Format())
		fmt.Printf("(regenerated in %v)\n\n", time.Since(t0).Round(time.Millisecond))
	}

	if *fig == "all" {
		for _, name := range order {
			run(name)
		}
	} else {
		run(*fig)
	}

	if *jsonPath != "" {
		if err := writeResult(*jsonPath, s.Opts, collected); err != nil {
			fmt.Fprintln(os.Stderr, "json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
}

// writeResult assembles the machine-readable result: the collected
// figures plus a telemetry snapshot from the probe workload, validated
// before it touches disk so a wiring regression fails the run itself.
func writeResult(path string, opts bench.Options, figures []*bench.Table) error {
	metrics, err := telemetryProbe()
	if err != nil {
		return fmt.Errorf("telemetry probe: %w", err)
	}
	rawMetrics, err := json.Marshal(metrics)
	if err != nil {
		return err
	}
	r := &bench.Result{
		Schema:      bench.ResultSchema,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		Config:      opts,
		Figures:     figures,
		Metrics:     rawMetrics,
	}
	if err := r.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// telemetryProbe runs a small deterministic mixed workload on a fresh
// instrumented PMem DB and returns its metrics snapshot. The workload
// guarantees every counter the validator requires is nonzero: committed
// writes, a forced write-write conflict, queries in all four execution
// modes (so the JIT compiles) and a statement-cache miss.
func telemetryProbe() (*poseidon.Metrics, error) {
	db, err := poseidon.Open(poseidon.Config{
		Mode:     poseidon.PMem,
		PoolSize: 128 << 20,
		Telemetry: poseidon.TelemetryConfig{
			Enabled:            true,
			SlowQueryThreshold: time.Millisecond,
		},
	})
	if err != nil {
		return nil, err
	}
	defer db.Close()

	tx := db.Begin()
	ids := make([]uint64, 32)
	for i := range ids {
		if ids[i], err = tx.CreateNode("Person", map[string]any{"name": fmt.Sprintf("p%02d", i), "age": int64(20 + i)}); err != nil {
			return nil, err
		}
	}
	for i := 1; i < len(ids); i++ {
		if _, err := tx.CreateRel(ids[i-1], ids[i], "knows", nil); err != nil {
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}

	// Forced write-write conflict: the abort counters must move.
	t1, t2 := db.Begin(), db.Begin()
	if err := t1.SetNodeProps(ids[0], map[string]any{"age": int64(99)}); err != nil {
		return nil, err
	}
	if err := t2.SetNodeProps(ids[0], map[string]any{"age": int64(98)}); !errors.Is(err, core.ErrAborted) {
		return nil, fmt.Errorf("expected write-write conflict, got %v", err)
	}
	if err := t1.Commit(); err != nil {
		return nil, err
	}

	ctx := context.Background()
	src := `MATCH (p:Person) RETURN p.name`
	for _, mode := range []poseidon.ExecMode{poseidon.Interpret, poseidon.Parallel, poseidon.JIT, poseidon.Adaptive} {
		if _, err := db.CypherModeCtx(ctx, src, nil, mode); err != nil {
			return nil, fmt.Errorf("mode %v: %w", mode, err)
		}
	}
	m := db.Metrics()
	return &m, nil
}

// traceFigure measures request-tracing overhead through the public
// session API. Three identically loaded DRAM databases run the same
// prepared scan: tracing disabled (the production default — every
// instrumented call site no-ops through a nil handle), enabled at the
// default 0.1 tail-sampling rate, and enabled retaining every trace.
// Rounds interleave across the variants so GC and scheduler noise
// spread evenly instead of penalizing whichever runs last. The "off"
// row is the baseline CI guards against: overhead_pct must stay ~0 for
// off (by construction) and bounded for the enabled rows.
func traceFigure(runs int) (*bench.Table, error) {
	variants := []struct {
		name string
		cfg  poseidon.TraceConfig
	}{
		{"off", poseidon.TraceConfig{}},
		{"sampled", poseidon.TraceConfig{Enabled: true, SampleRate: 0.1}},
		{"full", poseidon.TraceConfig{Enabled: true, SampleRate: 1, RingSize: 256}},
	}
	const nodes = 2000
	type instance struct {
		db    *poseidon.DB
		sess  *poseidon.Session
		stmt  *poseidon.Stmt
		total time.Duration
		ops   int
	}
	insts := make([]*instance, len(variants))
	for i, v := range variants {
		db, err := poseidon.Open(poseidon.Config{
			Mode:      poseidon.DRAM,
			PoolSize:  256 << 20,
			Telemetry: poseidon.TelemetryConfig{Enabled: true, Trace: v.cfg},
		})
		if err != nil {
			return nil, err
		}
		defer db.Close()
		tx := db.Begin()
		for j := 0; j < nodes; j++ {
			if _, err := tx.CreateNode("Person", map[string]any{"v": int64(j)}); err != nil {
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
		stmt, err := db.PreparePlan(&query.Plan{Root: &query.Project{
			Input: &query.NodeScan{Label: "Person"},
			Cols:  []query.Expr{&query.Prop{Col: 0, Key: "v"}},
		}})
		if err != nil {
			return nil, err
		}
		sess := db.NewSession(poseidon.SessionConfig{})
		defer sess.Close()
		insts[i] = &instance{db: db, sess: sess, stmt: stmt}
	}

	ctx := context.Background()
	once := func(in *instance) error {
		rows, err := in.sess.Query(ctx, in.stmt, nil)
		if err != nil {
			return err
		}
		n := 0
		for rows.Next() {
			_ = rows.Row()
			n++
		}
		if err := rows.Close(); err != nil {
			return err
		}
		if n != nodes {
			return fmt.Errorf("scanned %d of %d rows", n, nodes)
		}
		return nil
	}
	// Scale rounds so the smoke config (-runs 2) still takes long enough
	// to measure: each round is opsPerRound queries per variant.
	const opsPerRound = 20
	rounds := runs
	if rounds < 2 {
		rounds = 2
	}
	for r := 0; r < rounds; r++ {
		for _, in := range insts {
			t0 := time.Now()
			for k := 0; k < opsPerRound; k++ {
				if err := once(in); err != nil {
					return nil, err
				}
			}
			in.total += time.Since(t0)
			in.ops += opsPerRound
		}
	}

	t := &bench.Table{
		Name:    fmt.Sprintf("request-tracing overhead (queries/s, %d-node scan via Session)", nodes),
		Columns: []string{"queries/s", "overhead_pct"},
		Notes: []string{
			"off: tracing disabled — instrumented call sites no-op through a nil *trace.Tracer",
			"sampled: tracing on, default 0.1 tail-sampling rate (production shape)",
			"full: tracing on, every trace retained (sample rate 1)",
			"overhead_pct is relative to the off row; rounds interleave across variants",
		},
	}
	base := float64(insts[0].ops) / insts[0].total.Seconds()
	for i, v := range variants {
		qps := float64(insts[i].ops) / insts[i].total.Seconds()
		t.Rows = append(t.Rows, bench.TableRow{
			Query: v.name,
			Cells: map[string]float64{
				"queries/s":    qps,
				"overhead_pct": 100 * (base - qps) / base,
			},
		})
	}
	return t, nil
}

// streamFigure compares materialized ([][]any via DB.Query) against
// streamed (Session.Query + Rows, raw values) delivery of a 100k-node
// scan through the public API.
func streamFigure(runs int) (*bench.Table, error) {
	db, err := poseidon.Open(poseidon.Config{Mode: poseidon.DRAM, PoolSize: 512 << 20})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	const nodes = 100000
	const batch = 10000
	for i := 0; i < nodes; i += batch {
		tx := db.Begin()
		for j := i; j < i+batch; j++ {
			if _, err := tx.CreateNode("Person", map[string]any{"v": int64(j)}); err != nil {
				return nil, err
			}
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	plan := &query.Plan{Root: &query.Project{
		Input: &query.NodeScan{Label: "Person"},
		Cols:  []query.Expr{&query.Prop{Col: 0, Key: "v"}},
	}}
	stmt, err := db.PreparePlan(plan)
	if err != nil {
		return nil, err
	}
	sess := db.NewSession(poseidon.SessionConfig{})
	defer sess.Close()

	runMat := func() error {
		rows, err := db.Query(plan, nil)
		if err != nil {
			return err
		}
		if len(rows) != nodes {
			return fmt.Errorf("materialized %d rows", len(rows))
		}
		return nil
	}
	runStr := func() error {
		rows, err := sess.Query(context.Background(), stmt, nil)
		if err != nil {
			return err
		}
		n := 0
		for rows.Next() {
			_ = rows.Row()
			n++
		}
		if err := rows.Close(); err != nil {
			return err
		}
		if n != nodes {
			return fmt.Errorf("streamed %d rows", n)
		}
		return nil
	}
	// Interleave the two variants so GC pauses (the materialized path
	// allocates ~60 MB per run) spread evenly instead of all landing on
	// whichever variant runs second.
	var matTotal, strTotal time.Duration
	for i := 0; i < runs; i++ {
		t0 := time.Now()
		if err := runMat(); err != nil {
			return nil, err
		}
		matTotal += time.Since(t0)
		t0 = time.Now()
		if err := runStr(); err != nil {
			return nil, err
		}
		strTotal += time.Since(t0)
	}
	krows := func(total time.Duration) float64 {
		return float64(nodes) * float64(runs) / total.Seconds() / 1e3
	}
	mat, str := krows(matTotal), krows(strTotal)
	return &bench.Table{
		Name:    "streamed vs materialized result delivery (krows/s, 100k-node scan)",
		Columns: []string{"materialized", "streamed"},
		Rows: []bench.TableRow{{
			Query: "scan100k",
			Cells: map[string]float64{"materialized": mat, "streamed": str},
		}},
		Notes: []string{
			"materialized decodes every value into [][]any before returning",
			"streamed pulls raw rows through a Session/Rows cursor as the scan runs",
		},
	}, nil
}
