// Command poseidon-crashx explores crash points of the engine's
// durability protocol. It replays an LDBC Interactive Update mix with a
// deterministic crash injected before the k-th flush/fence event, for
// every k (or a random sample), recovers each crashed image and verifies
// it with the internal/fsck invariant checks.
//
// Usage:
//
//	poseidon-crashx [-persons N] [-ops N] [-seed S] [-mask flush|drain]
//	                [-mix iu|ingest] [-random N] [-max N] [-replay SCHEDULE] [-q]
//
// The default mix commits one IU transaction at a time; -mix ingest runs
// the write-optimized ingest stack instead (bulk base load, group-commit
// epochs via CommitBatch, delta-mode indexes with explicit merges), so
// crashes land around the epoch leader's group fence and mid delta-merge.
//
// Exit status is 0 when every explored schedule recovered to a clean
// image, 1 on violations and 2 on usage or harness errors. Every reported
// violation carries a schedule ID; -replay re-executes one schedule, e.g.
//
//	poseidon-crashx -replay 'persons=8,seed=7,ops=1,mask=flush|drain,k=21'
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"poseidon/internal/crashx"
	"poseidon/internal/pmem"
)

func main() {
	persons := flag.Int("persons", 16, "dataset scale (number of persons)")
	ops := flag.Int("ops", 20, "IU operations per run")
	seed := flag.Int64("seed", 1, "workload seed (op mix + parameters)")
	maskStr := flag.String("mask", "flush|drain", "crash event classes: store, flush, drain, all (joined by |)")
	random := flag.Int("random", 0, "sample N crash points instead of enumerating all")
	maxPoints := flag.Int("max", 0, "cap exhaustive enumeration at N points (0 = all)")
	replay := flag.String("replay", "", "re-execute one schedule ID and report")
	shards := flag.Int("shards", 0, "engine-core shard count for run and recovery (0 = engine default)")
	mixStr := flag.String("mix", "iu", "workload mix: iu (per-txn commits) or ingest (group-commit epochs + delta merges)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	var mixSel string
	switch *mixStr {
	case "iu", "":
		mixSel = crashx.MixIU
	case "ingest":
		mixSel = crashx.MixIngest
	default:
		fmt.Fprintf(os.Stderr, "crashx: unknown -mix %q (want iu or ingest)\n", *mixStr)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	mask, err := pmem.ParseCrashEvents(*maskStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashx:", err)
		os.Exit(2)
	}

	if *replay != "" {
		sched, err := crashx.ParseScheduleID(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashx:", err)
			os.Exit(2)
		}
		v, err := crashx.Replay(ctx, sched)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crashx:", err)
			os.Exit(2)
		}
		if v != nil {
			fmt.Println(v)
			os.Exit(1)
		}
		fmt.Printf("schedule[%s]: recovered clean\n", sched)
		return
	}

	opts := crashx.Options{
		Persons:   *persons,
		Ops:       *ops,
		Seed:      *seed,
		Mask:      mask,
		Random:    *random,
		MaxPoints: *maxPoints,
		Shards:    *shards,
		Mix:       mixSel,
	}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	res, err := crashx.Explore(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crashx:", err)
		os.Exit(2)
	}
	fmt.Printf("explored %d crash points (of %d %s events): %d violations\n",
		res.Points, res.TotalEvents, mask, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println(v)
	}
	if len(res.Violations) > 0 {
		os.Exit(1)
	}
}
