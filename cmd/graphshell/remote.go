package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"poseidon/client"
	"poseidon/internal/trace"
)

// remoteShell is graphshell's -connect mode: a REPL over the wire
// protocol against a running poseidond. The command set is the
// statement-level subset — everything executes server-side, so the
// embedded-mode commands that poke engine internals (crash, stats,
// find) do not apply.
//
//	cypher <stmt>        run a Cypher statement (bare lines work too)
//	ldbc:<name>          run a built-in workload statement, e.g. ldbc:sr1 id=42
//	begin/commit/rollback  explicit transaction control
//	reset                discard server-side statement state
//	info                 server name, version and default mode
//	:profile             server-side stage breakdown of the last statement
//	:trace [id]          server-retained traces / Chrome JSON export
//	help / quit
//
// The shell always attaches a tracer so each statement mints a trace ID
// that propagates to the server (v2 peers); :profile and :trace then
// read the server's view of this connection's requests.
func remoteShell(addr string) error {
	// Sample rate 0: the shell only mints and propagates IDs — the
	// server retains the traces, so nothing needs to be kept locally.
	tracer := trace.New(trace.Config{RingSize: 16, SampleRate: 0})
	opts := client.Options{UserAgent: "graphshell", Tracer: tracer}
	conn, err := client.Dial(addr, opts)
	if err != nil {
		return fmt.Errorf("connect %s: %w", addr, err)
	}
	defer conn.Close()
	info := conn.ServerInfo()
	fmt.Printf("connected to %v %v at %s (mode %v). Type 'help' for commands.\n",
		info["server"], info["version"], addr, info["mode"])

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := remoteCommand(conn, line); err != nil {
			if err == errQuit {
				return nil
			}
			fmt.Println("error:", err)
			if conn.Broken() {
				fmt.Println("connection lost; reconnecting...")
				if conn, err = client.Dial(addr, opts); err != nil {
					return fmt.Errorf("reconnect %s: %w", addr, err)
				}
			}
		}
	}
}

func remoteCommand(conn *client.Conn, line string) error {
	fields := strings.Fields(line)
	// ":profile" and "profile" are the same command, matching the
	// embedded shell's leading-colon convention.
	word := strings.TrimPrefix(strings.ToLower(fields[0]), ":")
	switch word {
	case "help":
		fmt.Println("cypher <statement>     e.g. cypher MATCH (p:Person) RETURN p.name LIMIT 5")
		fmt.Println("ldbc:<name> [k=v ...]  built-in workload statement, e.g. ldbc:sr1 id=42")
		fmt.Println("begin commit rollback  explicit transaction control")
		fmt.Println(":profile               server-side stage breakdown of the last statement")
		fmt.Println(":trace [id]            server-retained traces, or one as Chrome JSON")
		fmt.Println("reset info quit")
		return nil
	case "quit", "exit":
		return errQuit
	case "begin":
		if err := conn.Begin(); err != nil {
			return err
		}
		fmt.Println("(transaction open)")
		return nil
	case "commit":
		if err := conn.Commit(); err != nil {
			return err
		}
		fmt.Println("(committed)")
		return nil
	case "rollback":
		if err := conn.Rollback(); err != nil {
			return err
		}
		fmt.Println("(rolled back)")
		return nil
	case "reset":
		return conn.Reset()
	case "info":
		fmt.Printf("%v\n", conn.ServerInfo())
		return nil
	case "profile":
		meta, err := conn.Sys("profile")
		if err != nil {
			return err
		}
		out, _ := meta["profile"].(string)
		if !strings.HasSuffix(out, "\n") {
			out += "\n"
		}
		fmt.Print(out)
		return nil
	case "trace":
		return remoteTrace(conn, fields[1:])
	}

	// Statement forms: "cypher <stmt>", "ldbc:<name> [k=v ...]", or a
	// bare statement line.
	stmt := line
	var params map[string]any
	if rest, ok := cutPrefixFold(line, "cypher "); ok {
		stmt = rest
	} else if strings.HasPrefix(line, "ldbc:") {
		fields := strings.Fields(line)
		stmt = fields[0]
		params = parseProps(fields[1:])
	}
	return remoteRun(conn, stmt, params)
}

// remoteTrace lists the server's retained traces (sys:traces), or with
// an ID argument prints that trace's Chrome trace-event JSON.
func remoteTrace(conn *client.Conn, args []string) error {
	if len(args) == 1 {
		meta, err := conn.Sys("trace:" + args[0])
		if err != nil {
			return err
		}
		out, _ := meta["trace"].(string)
		fmt.Println(out)
		return nil
	}
	meta, err := conn.Sys("traces")
	if err != nil {
		return err
	}
	raw, _ := meta["traces"].(string)
	var sums []trace.Summary
	if err := json.Unmarshal([]byte(raw), &sums); err != nil {
		return fmt.Errorf("decode sys:traces: %w", err)
	}
	if len(sums) == 0 {
		fmt.Println("no traces retained server-side")
		return nil
	}
	fmt.Printf("%-16s %10s %6s %-6s %s\n", "id", "total", "spans", "", "root / kinds")
	for _, s := range sums {
		flag := ""
		if s.Err != "" {
			flag = "ERR"
		} else if s.Pinned {
			flag = "slow"
		}
		fmt.Printf("%-16s %9.3fms %6d %-6s %s [%s]\n",
			s.ID, s.DurationMS, s.Spans, flag, s.Root, strings.Join(s.Kinds, " "))
	}
	fmt.Println("(':trace <id>' exports Chrome trace-event JSON for chrome://tracing)")
	return nil
}

// remoteRun prepares the statement (the server reports whether it
// updates), executes it, and prints rows or the committed summary with
// the statement's trace ID (feed it to :trace <id>).
func remoteRun(conn *client.Conn, stmt string, params map[string]any) error {
	start := time.Now()
	st, err := conn.Prepare(stmt)
	if err != nil {
		return err
	}
	if st.HasUpdates && !conn.InTx() {
		n, err := conn.Exec(st, params)
		if err != nil {
			return err
		}
		fmt.Printf("(%d rows, committed, %v%s)\n", n, time.Since(start).Round(time.Microsecond), traceSuffix(conn))
		return nil
	}
	rows, err := conn.Query(st, params)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Printf("(%d rows, %v%s)\n", len(rows), time.Since(start).Round(time.Microsecond), traceSuffix(conn))
	return nil
}

func traceSuffix(conn *client.Conn) string {
	if id := conn.LastTraceID(); id != "" {
		return ", trace " + id
	}
	return ""
}
