package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"time"

	"poseidon/client"
)

// remoteShell is graphshell's -connect mode: a REPL over the wire
// protocol against a running poseidond. The command set is the
// statement-level subset — everything executes server-side, so the
// embedded-mode commands that poke engine internals (crash, stats,
// find) do not apply.
//
//	cypher <stmt>        run a Cypher statement (bare lines work too)
//	ldbc:<name>          run a built-in workload statement, e.g. ldbc:sr1 id=42
//	begin/commit/rollback  explicit transaction control
//	reset                discard server-side statement state
//	info                 server name, version and default mode
//	help / quit
func remoteShell(addr string) error {
	conn, err := client.Dial(addr, client.Options{UserAgent: "graphshell"})
	if err != nil {
		return fmt.Errorf("connect %s: %w", addr, err)
	}
	defer conn.Close()
	info := conn.ServerInfo()
	fmt.Printf("connected to %v %v at %s (mode %v). Type 'help' for commands.\n",
		info["server"], info["version"], addr, info["mode"])

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return nil
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := remoteCommand(conn, line); err != nil {
			if err == errQuit {
				return nil
			}
			fmt.Println("error:", err)
			if conn.Broken() {
				fmt.Println("connection lost; reconnecting...")
				if conn, err = client.Dial(addr, client.Options{UserAgent: "graphshell"}); err != nil {
					return fmt.Errorf("reconnect %s: %w", addr, err)
				}
			}
		}
	}
}

func remoteCommand(conn *client.Conn, line string) error {
	word := strings.ToLower(strings.Fields(line)[0])
	switch word {
	case "help":
		fmt.Println("cypher <statement>     e.g. cypher MATCH (p:Person) RETURN p.name LIMIT 5")
		fmt.Println("ldbc:<name> [k=v ...]  built-in workload statement, e.g. ldbc:sr1 id=42")
		fmt.Println("begin commit rollback  explicit transaction control")
		fmt.Println("reset info quit")
		return nil
	case "quit", "exit":
		return errQuit
	case "begin":
		if err := conn.Begin(); err != nil {
			return err
		}
		fmt.Println("(transaction open)")
		return nil
	case "commit":
		if err := conn.Commit(); err != nil {
			return err
		}
		fmt.Println("(committed)")
		return nil
	case "rollback":
		if err := conn.Rollback(); err != nil {
			return err
		}
		fmt.Println("(rolled back)")
		return nil
	case "reset":
		return conn.Reset()
	case "info":
		fmt.Printf("%v\n", conn.ServerInfo())
		return nil
	}

	// Statement forms: "cypher <stmt>", "ldbc:<name> [k=v ...]", or a
	// bare statement line.
	stmt := line
	var params map[string]any
	if rest, ok := cutPrefixFold(line, "cypher "); ok {
		stmt = rest
	} else if strings.HasPrefix(line, "ldbc:") {
		fields := strings.Fields(line)
		stmt = fields[0]
		params = parseProps(fields[1:])
	}
	return remoteRun(conn, stmt, params)
}

// remoteRun prepares the statement (the server reports whether it
// updates), executes it, and prints rows or the committed summary.
func remoteRun(conn *client.Conn, stmt string, params map[string]any) error {
	start := time.Now()
	st, err := conn.Prepare(stmt)
	if err != nil {
		return err
	}
	if st.HasUpdates && !conn.InTx() {
		n, err := conn.Exec(st, params)
		if err != nil {
			return err
		}
		fmt.Printf("(%d rows, committed, %v)\n", n, time.Since(start).Round(time.Microsecond))
		return nil
	}
	rows, err := conn.Query(st, params)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Println(r)
	}
	fmt.Printf("(%d rows, %v)\n", len(rows), time.Since(start).Round(time.Microsecond))
	return nil
}
