// Command graphshell is a small interactive shell over the public API:
// create nodes and relationships, traverse, and run simple lookups, with
// crash/recover commands that exercise the PMem durability path.
//
// Commands:
//
//	node <label> [key=value ...]          create a node
//	rel <src> <dst> <label> [key=value]   create a relationship
//	get <id>                              show a node
//	out <id> / in <id>                    list relationships
//	scan <label>                          list nodes with a label
//	find <label> <key> <value>            indexed lookup (auto-creates index)
//	set <id> key=value ...                update properties
//	del <id>                              detach-delete a node
//	stats                                 device statistics
//	:metrics                              telemetry snapshot + slow queries
//	:profile                              stage breakdown of the last statement
//	:trace [id]                           retained traces / Chrome JSON export
//	crash                                 simulate power failure + recover
//	help / quit
//
// With -connect host:port the shell runs against a remote poseidond
// over the wire protocol instead of an embedded database: cypher and
// "ldbc:" statements, plus begin/commit/rollback, execute server-side
// (see remote.go for the reduced command set).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"poseidon"
	"poseidon/internal/core"
	"poseidon/internal/query"
	"poseidon/internal/trace"
)

// shell bundles the database with the session every statement runs in.
// The session pins a 30s statement deadline, so a runaway scan cancels
// itself instead of hanging the prompt.
type shell struct {
	db   *poseidon.DB
	sess *poseidon.Session
}

func (sh *shell) reset(db *poseidon.DB) {
	if sh.sess != nil {
		sh.sess.Close()
	}
	sh.db = db
	sh.sess = db.NewSession(poseidon.SessionConfig{Timeout: 30 * time.Second})
}

func main() {
	connect := flag.String("connect", "", "run against a remote poseidond at this host:port instead of an embedded database")
	flag.Parse()
	if *connect != "" {
		if err := remoteShell(*connect); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	db, err := poseidon.Open(poseidon.Config{Mode: poseidon.PMem, PoolSize: 256 << 20, Telemetry: shellTelemetry})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sh := &shell{}
	sh.reset(db)
	defer func() {
		sh.sess.Close()
		sh.db.Close()
	}()
	fmt.Println("poseidon graph shell (PMem mode). Type 'help' for commands.")

	indexed := map[[2]string]bool{}
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		line := sc.Text()
		if rest, ok := cutPrefixFold(line, "explain "); ok {
			out, err := sh.db.ExplainCypher(rest)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(out)
			continue
		}
		if rest, ok := cutPrefixFold(line, "cypher "); ok {
			if err := sh.cypher(rest); err != nil {
				fmt.Println("error:", err)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		cmd, args := strings.TrimPrefix(fields[0], ":"), fields[1:]
		if err := run(sh, cmd, args, indexed); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

// cypher prepares the statement (cached across repeats — see 'stats')
// and either commits it as an update or streams the result row by row.
func (sh *shell) cypher(src string) error {
	stmt, err := sh.db.Prepare(src)
	if err != nil {
		return err
	}
	if stmt.Plan().HasUpdates() {
		n, err := sh.sess.Exec(context.Background(), stmt, nil)
		if err != nil {
			return err
		}
		fmt.Printf("(%d rows, committed)\n", n)
		return nil
	}
	rows, err := sh.sess.Query(context.Background(), stmt, nil)
	if err != nil {
		return err
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		vals, err := rows.Values()
		if err != nil {
			return err
		}
		fmt.Println(vals)
		n++
	}
	if err := rows.Err(); err != nil {
		return err
	}
	fmt.Printf("(%d rows)\n", n)
	return nil
}

var errQuit = fmt.Errorf("quit")

// shellTelemetry instruments the shell's DB so :metrics has data; the
// 50ms threshold keeps the slow-query log to statements a human would
// actually call slow at interactive scale. Tracing retains every trace
// (sample rate 1) because an interactive shell issues statements at
// human rates — :profile and :trace always have the last one.
var shellTelemetry = poseidon.TelemetryConfig{
	Enabled:            true,
	SlowQueryThreshold: 50 * time.Millisecond,
	SlowQueryLogSize:   32,
	Trace:              poseidon.TraceConfig{Enabled: true, SampleRate: 1},
}

// printMetrics pretty-prints the DB.Metrics() snapshot and the most
// recent slow-query traces.
func printMetrics(db *poseidon.DB) error {
	m := db.Metrics()
	fmt.Printf("graph:      %d nodes, %d rels\n", m.Nodes, m.Rels)
	fmt.Printf("pmem:       reads=%d writes=%d blockWrites=%d flushes=%d drains=%d cacheHit=%d cacheMiss=%d\n",
		m.PMem.Reads, m.PMem.Writes, m.PMem.BlockWrites, m.PMem.LineFlushes, m.PMem.Drains,
		m.PMem.CacheHits, m.PMem.CacheMisses)
	fmt.Printf("tx:         begun=%d committed=%d active=%d\n", m.Tx.Begun, m.Tx.Commits, m.Tx.Active)
	if len(m.Tx.Aborts) > 0 {
		fmt.Print("aborts:    ")
		for _, reason := range []string{"explicit", "write_conflict", "validation", "cancelled", "commit_failed"} {
			if n := m.Tx.Aborts[reason]; n > 0 {
				fmt.Printf(" %s=%d", reason, n)
			}
		}
		fmt.Println()
	}
	if w := m.Tx.ChainWalk; w.Count > 0 {
		fmt.Printf("mvto:       %d chain walks, p50=%.1f p95=%.1f versions\n",
			w.Count, w.Quantile(0.50), w.Quantile(0.95))
	}
	fmt.Printf("queries:    %d total, %d errors, %d rows streamed, %d slow\n",
		m.Query.Count, m.Query.Errors, m.Query.Rows, m.Query.Slow)
	if len(m.Query.ByMode) > 0 {
		fmt.Printf("  by mode:  %v\n", m.Query.ByMode)
	}
	if l := m.Query.Latency; l.Count > 0 {
		fmt.Printf("  latency:  p50=%.3fms p95=%.3fms\n", l.Quantile(0.50)*1e3, l.Quantile(0.95)*1e3)
	}
	fmt.Printf("jit:        %d compiles, cache hits mem=%d persist=%d, morsels interp=%d compiled=%d, switchovers=%d\n",
		m.JIT.Compiles, m.JIT.CodeCacheMemHits, m.JIT.CodeCachePersistHits,
		m.JIT.MorselsInterpreted, m.JIT.MorselsCompiled, m.JIT.Switchovers)
	fmt.Printf("stmt cache: %d cached, %d hits, %d misses, %d evictions\n",
		m.StmtCache.Size, m.StmtCache.Hits, m.StmtCache.Misses, m.StmtCache.Evictions)

	slow := db.SlowQueries()
	if len(slow) == 0 {
		fmt.Printf("slow log:   empty (threshold %v)\n", db.SlowQueryThreshold())
		return nil
	}
	fmt.Printf("slow log:   %d most recent (threshold %v):\n", len(slow), db.SlowQueryThreshold())
	for i, q := range slow {
		if i == 5 {
			fmt.Printf("  ... %d more\n", len(slow)-5)
			break
		}
		link := ""
		if q.TraceID != "" {
			link = "  trace=" + q.TraceID
		}
		fmt.Printf("  [%s] %v total (compile %v, exec %v) rows=%d mode=%s  %s%s\n",
			q.Start.Format("15:04:05"), q.Total.Round(time.Microsecond),
			q.Compile.Round(time.Microsecond), q.Execute.Round(time.Microsecond),
			q.Rows, q.Mode, q.Query, link)
	}
	return nil
}

// cutPrefixFold strips a case-insensitive prefix.
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix) {
		return s[len(prefix):], true
	}
	return s, false
}

func parseProps(args []string) map[string]any {
	props := map[string]any{}
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			continue
		}
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			props[k] = n
		} else if f, err := strconv.ParseFloat(v, 64); err == nil {
			props[k] = f
		} else if v == "true" || v == "false" {
			props[k] = v == "true"
		} else {
			props[k] = v
		}
	}
	return props
}

func parseID(s string) (uint64, error) {
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad id %q", s)
	}
	return n, nil
}

func run(sh *shell, cmd string, args []string, indexed map[[2]string]bool) error {
	db := sh.db
	switch cmd {
	case "help":
		fmt.Println("node rel get out in scan find set del stats crash quit")
		fmt.Println("cypher <statement>   e.g. cypher MATCH (p:Person) RETURN p.name LIMIT 5")
		fmt.Println("explain <statement>  show plan signature, JIT and parallelism info")
		fmt.Println(":metrics             engine telemetry snapshot and recent slow queries")
		fmt.Println(":profile             stage-by-stage breakdown of the last statement")
		fmt.Println(":trace [id]          list retained traces, or export one as Chrome JSON")
		return nil
	case "quit", "exit":
		return errQuit

	case "node":
		if len(args) < 1 {
			return fmt.Errorf("usage: node <label> [k=v ...]")
		}
		tx := db.Begin()
		id, err := tx.CreateNode(args[0], parseProps(args[1:]))
		if err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		fmt.Printf("node %d\n", id)
		return nil

	case "rel":
		if len(args) < 3 {
			return fmt.Errorf("usage: rel <src> <dst> <label> [k=v ...]")
		}
		src, err := parseID(args[0])
		if err != nil {
			return err
		}
		dst, err := parseID(args[1])
		if err != nil {
			return err
		}
		tx := db.Begin()
		id, err := tx.CreateRel(src, dst, args[2], parseProps(args[3:]))
		if err != nil {
			tx.Abort()
			return err
		}
		if err := tx.Commit(); err != nil {
			return err
		}
		fmt.Printf("rel %d\n", id)
		return nil

	case "get":
		if len(args) != 1 {
			return fmt.Errorf("usage: get <id>")
		}
		id, err := parseID(args[0])
		if err != nil {
			return err
		}
		tx := db.Begin()
		defer tx.Abort()
		snap, err := tx.GetNode(id)
		if err != nil {
			return err
		}
		label, _ := db.Engine().Dict().Decode(uint64(snap.Rec.Label))
		props, err := db.Engine().DecodeProps(snap.Props())
		if err != nil {
			return err
		}
		fmt.Printf("node %d :%s %v\n", id, label, props)
		return nil

	case "out", "in":
		if len(args) != 1 {
			return fmt.Errorf("usage: %s <id>", cmd)
		}
		id, err := parseID(args[0])
		if err != nil {
			return err
		}
		tx := db.Begin()
		defer tx.Abort()
		snap, err := tx.GetNode(id)
		if err != nil {
			return err
		}
		show := func(r core.RelSnap) bool {
			label, _ := db.Engine().Dict().Decode(uint64(r.Rec.Label))
			fmt.Printf("rel %d :%s %d -> %d\n", r.ID, label, r.Rec.Src, r.Rec.Dst)
			return true
		}
		if cmd == "out" {
			return tx.OutRels(snap, show)
		}
		return tx.InRels(snap, show)

	case "scan":
		if len(args) != 1 {
			return fmt.Errorf("usage: scan <label>")
		}
		stmt, err := db.PreparePlan(&query.Plan{Root: &query.NodeScan{Label: args[0]}})
		if err != nil {
			return err
		}
		rows, err := sh.sess.Query(context.Background(), stmt, nil)
		if err != nil {
			return err
		}
		defer rows.Close()
		n := 0
		for rows.Next() {
			vals, err := rows.Values()
			if err != nil {
				return err
			}
			fmt.Printf("node %v\n", vals[0])
			n++
		}
		if err := rows.Err(); err != nil {
			return err
		}
		fmt.Printf("(%d nodes)\n", n)
		return nil

	case "find":
		if len(args) != 3 {
			return fmt.Errorf("usage: find <label> <key> <value>")
		}
		ik := [2]string{args[0], args[1]}
		if !indexed[ik] {
			if err := db.CreateIndex(args[0], args[1], poseidon.HybridIndex); err != nil {
				return err
			}
			indexed[ik] = true
			fmt.Printf("(created hybrid index on %s.%s)\n", args[0], args[1])
		}
		var val any = args[2]
		if n, err := strconv.ParseInt(args[2], 10, 64); err == nil {
			val = n
		}
		plan := &query.Plan{Root: &query.IndexScan{Label: args[0], Key: args[1], Value: &query.Param{Name: "v"}}}
		rows, err := db.Query(plan, query.Params{"v": val})
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("node %v\n", r[0])
		}
		fmt.Printf("(%d hits)\n", len(rows))
		return nil

	case "set":
		if len(args) < 2 {
			return fmt.Errorf("usage: set <id> k=v ...")
		}
		id, err := parseID(args[0])
		if err != nil {
			return err
		}
		tx := db.Begin()
		if err := tx.SetNodeProps(id, parseProps(args[1:])); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()

	case "del":
		if len(args) != 1 {
			return fmt.Errorf("usage: del <id>")
		}
		id, err := parseID(args[0])
		if err != nil {
			return err
		}
		tx := db.Begin()
		if err := tx.DetachDeleteNode(id); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()

	case "stats":
		st := db.Device().Stats.Snapshot()
		fmt.Printf("nodes=%d rels=%d reads=%d writes=%d flushes=%d drains=%d cacheHit=%d cacheMiss=%d\n",
			db.NodeCount(), db.RelCount(),
			st.Reads, st.Writes, st.LineFlushes, st.Drains, st.CacheHits, st.CacheMisses)
		cs := db.CacheStats()
		fmt.Printf("stmt cache: %d cached, %d hits, %d misses, %d evictions\n",
			cs.Size, cs.Hits, cs.Misses, cs.Evictions)
		return nil

	case "metrics":
		return printMetrics(db)

	case "profile":
		out := sh.sess.LastProfile().Format()
		if !strings.HasSuffix(out, "\n") {
			out += "\n"
		}
		fmt.Print(out)
		return nil

	case "trace":
		if len(args) == 1 {
			id, err := trace.ParseID(args[0])
			if err != nil {
				return err
			}
			tr := db.Tracer().Trace(id)
			if tr == nil {
				return fmt.Errorf("trace %s not retained (evicted, or tracing disabled)", args[0])
			}
			buf, err := trace.ChromeJSON([]*trace.Trace{tr})
			if err != nil {
				return err
			}
			fmt.Println(string(buf))
			return nil
		}
		traces := db.Traces()
		if len(traces) == 0 {
			fmt.Println("no traces retained")
			return nil
		}
		fmt.Printf("%-16s %10s %6s %-6s %s\n", "id", "total", "spans", "", "root / kinds")
		for _, tr := range traces {
			s := trace.Summarize(tr)
			flag := ""
			if s.Err != "" {
				flag = "ERR"
			} else if s.Pinned {
				flag = "slow"
			}
			fmt.Printf("%-16s %9.3fms %6d %-6s %s [%s]\n",
				s.ID, s.DurationMS, s.Spans, flag, s.Root, strings.Join(s.Kinds, " "))
		}
		fmt.Println("(':trace <id>' exports Chrome trace-event JSON for chrome://tracing)")
		return nil

	case "crash":
		fmt.Println("simulating power failure...")
		dev := db.Crash()
		db2, err := poseidon.Reopen(dev, poseidon.Config{Mode: poseidon.PMem, Telemetry: shellTelemetry})
		if err != nil {
			return err
		}
		sh.reset(db2)
		fmt.Printf("recovered: %d nodes, %d rels\n", db2.NodeCount(), db2.RelCount())
		return nil

	default:
		return fmt.Errorf("unknown command %q (try 'help')", cmd)
	}
}
