// Command poseidonlint runs the poseidon static analyzer (internal/lint)
// over the module: crash-consistency discipline (flush ordering,
// undo-log coverage, torn multi-word stores — paper C4), context
// threading, telemetry handle safety, and the CFG-based concurrency
// passes (lock order, seqlock brackets, atomic field consistency,
// span/rows lifecycle, wire error codes).
//
// Usage:
//
//	go run ./cmd/poseidonlint ./...
//	go run ./cmd/poseidonlint -list
//	go run ./cmd/poseidonlint -disable ctx-threading ./internal/index
//	go run ./cmd/poseidonlint -baseline .poseidonlint-baseline ./...
//	go run ./cmd/poseidonlint -write-baseline .poseidonlint-baseline ./...
//	go run ./cmd/poseidonlint -sarif lint.sarif -timing -time-budget 60s ./...
//
// Findings print as "file:line:col: [pass] message"; the exit status is
// 1 when any unbaselined finding remains, 2 on a fatal error, and 3
// when -time-budget is set and the analyzer ran over it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"poseidon/internal/lint"
)

func main() {
	var (
		enable    = flag.String("enable", "", "comma-separated passes to run (default: all)")
		disable   = flag.String("disable", "", "comma-separated passes to skip")
		baseline  = flag.String("baseline", "", "baseline file of grandfathered findings")
		writeBase = flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
		list      = flag.Bool("list", false, "list available passes and exit")
		verbose   = flag.Bool("v", false, "also print baselined (suppressed) findings")
		sarifOut  = flag.String("sarif", "", "also write unbaselined findings as SARIF 2.1.0 to this file")
		timing    = flag.Bool("timing", false, "print per-pass wall-clock timings to stderr")
		budget    = flag.Duration("time-budget", 0, "exit 3 if load+analysis wall-clock exceeds this duration (0 = no budget)")
	)
	flag.Parse()

	if *list {
		for _, p := range lint.Passes() {
			fmt.Printf("%-22s %s\n", p.Name, p.Doc)
		}
		return
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	m, err := lint.Load(root)
	if err != nil {
		fatal(err)
	}
	loadElapsed := time.Since(start)

	opts := lint.Options{Enable: splitList(*enable), Disable: splitList(*disable)}
	findings, timings, err := lint.RunTimed(m, opts)
	if err != nil {
		fatal(err)
	}
	total := time.Since(start)
	findings = filterByPatterns(root, findings, flag.Args())

	if *timing {
		fmt.Fprintf(os.Stderr, "poseidonlint: %-22s %8.1fms\n", "load+typecheck", float64(loadElapsed.Microseconds())/1000)
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "poseidonlint: %-22s %8.1fms\n", t.Pass, float64(t.Elapsed.Microseconds())/1000)
		}
		fmt.Fprintf(os.Stderr, "poseidonlint: %-22s %8.1fms\n", "total", float64(total.Microseconds())/1000)
	}

	if *writeBase != "" {
		if err := lint.WriteBaseline(*writeBase, root, findings); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "poseidonlint: wrote %d finding(s) to %s\n", len(findings), *writeBase)
		return
	}

	var baselined map[string]bool
	if *baseline != "" {
		baselined, err = lint.ReadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
	}
	fresh, old := lint.ApplyBaseline(root, findings, baselined)
	for _, f := range fresh {
		fmt.Println(rel(root, f))
	}
	if *verbose {
		for _, f := range old {
			fmt.Printf("%s (baselined)\n", rel(root, f))
		}
	}
	if *sarifOut != "" {
		w, err := os.Create(*sarifOut)
		if err != nil {
			fatal(err)
		}
		if err := lint.WriteSARIF(w, root, fresh); err != nil {
			w.Close()
			fatal(err)
		}
		if err := w.Close(); err != nil {
			fatal(err)
		}
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "poseidonlint: %d finding(s)\n", len(fresh))
		os.Exit(1)
	}
	if *budget > 0 && total > *budget {
		fmt.Fprintf(os.Stderr, "poseidonlint: analysis took %s, over the %s budget\n", total.Round(time.Millisecond), *budget)
		os.Exit(3)
	}
}

func rel(root string, f lint.Finding) string {
	s := f.String()
	if r, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		s = fmt.Sprintf("%s:%d:%d: [%s] %s", filepath.ToSlash(r), f.Pos.Line, f.Pos.Column, f.Pass, f.Msg)
	}
	return s
}

// filterByPatterns narrows findings to the requested package patterns.
// "./..." (or no args) keeps everything; "./internal/index" keeps that
// directory; a trailing "/..." keeps the subtree.
func filterByPatterns(root string, findings []lint.Finding, patterns []string) []lint.Finding {
	if len(patterns) == 0 {
		return findings
	}
	var prefixes []string
	for _, p := range patterns {
		if p == "./..." || p == "..." || p == "all" {
			return findings
		}
		sub := strings.TrimSuffix(p, "/...")
		abs := sub
		if !filepath.IsAbs(sub) {
			abs = filepath.Join(root, sub)
		}
		prefixes = append(prefixes, filepath.Clean(abs))
	}
	var out []lint.Finding
	for _, f := range findings {
		dir := filepath.Dir(f.Pos.Filename)
		for _, p := range prefixes {
			if dir == p || strings.HasPrefix(dir, p+string(filepath.Separator)) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("poseidonlint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "poseidonlint:", err)
	os.Exit(2)
}
