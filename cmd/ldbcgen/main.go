// Command ldbcgen generates the LDBC-SNB-like dataset, loads it into a
// PMem engine and prints a summary: entity counts, degree statistics and
// storage utilization. Useful for inspecting what the benchmarks run on.
//
// Usage:
//
//	ldbcgen [-persons N] [-seed S] [-bulk] [-save FILE]
//
// With -save, the engine's durable device image is written to FILE; the
// recovery example and graphshell can load it.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/index"
	"poseidon/internal/ldbc"
)

func main() {
	persons := flag.Int("persons", 1000, "number of persons (SNB ratios derive the rest)")
	seed := flag.Int64("seed", 42, "generator seed")
	save := flag.String("save", "", "write the durable device image to this file")
	bulk := flag.Bool("bulk", false, "load through the write-optimized bulk path (indexes built per batch)")
	flag.Parse()

	start := time.Now()
	ds := ldbc.Generate(ldbc.Config{Persons: *persons, Seed: *seed})
	fmt.Printf("generated %d nodes, %d edges in %v\n",
		len(ds.Nodes), len(ds.Edges), time.Since(start).Round(time.Millisecond))

	byLabel := map[string]int{}
	for _, n := range ds.Nodes {
		byLabel[n.Label]++
	}
	labels := make([]string, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	fmt.Println("\nnodes by label:")
	for _, l := range labels {
		fmt.Printf("  %-12s %8d\n", l, byLabel[l])
	}
	byRel := map[string]int{}
	for _, e := range ds.Edges {
		byRel[e.Label]++
	}
	rels := make([]string, 0, len(byRel))
	for l := range byRel {
		rels = append(rels, l)
	}
	sort.Strings(rels)
	fmt.Println("\nedges by label:")
	for _, l := range rels {
		fmt.Printf("  %-12s %8d\n", l, byRel[l])
	}

	// Degree distribution of knows.
	deg := map[int]int{}
	for _, e := range ds.Edges {
		if e.Label == "knows" {
			deg[e.Src]++
		}
	}
	var maxDeg, sum int
	for _, d := range deg {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	if len(deg) > 0 {
		fmt.Printf("\nknows out-degree: avg %.1f, max %d\n", float64(sum)/float64(len(deg)), maxDeg)
	}

	start = time.Now()
	e, err := core.Open(core.Config{Mode: core.PMem, PoolSize: 1 << 30})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer e.Close()
	load, how := ds.LoadCore, "classic (backfill) path"
	if *bulk {
		load, how = ds.BulkLoadCore, "bulk path (streamed, per-batch index publication)"
	}
	if err := load(e, true, index.Hybrid); err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	fmt.Printf("\nloaded into PMem engine via %s in %v\n", how, time.Since(start).Round(time.Millisecond))
	fmt.Printf("pool heap used: %.1f MiB\n", float64(e.Pool().HeapUsed())/(1<<20))
	st := e.Device().Stats.Snapshot()
	fmt.Printf("device during load: %d writes, %d line flushes, %d block writes, %d drains\n",
		st.Writes, st.LineFlushes, st.BlockWrites, st.Drains)

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := e.Device().Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "save:", err)
			os.Exit(1)
		}
		fmt.Printf("durable image written to %s\n", *save)
	}
}
