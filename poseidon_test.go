package poseidon

import (
	"sort"
	"strings"
	"testing"

	"poseidon/internal/query"
)

func openTestDB(t *testing.T, mode Mode) *DB {
	t.Helper()
	db, err := Open(Config{Mode: mode, PoolSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func seedSocial(t *testing.T, db *DB) (alice, bob, carol uint64) {
	t.Helper()
	tx := db.Begin()
	var err error
	if alice, err = tx.CreateNode("Person", map[string]any{"name": "alice", "age": int64(30)}); err != nil {
		t.Fatal(err)
	}
	if bob, err = tx.CreateNode("Person", map[string]any{"name": "bob", "age": int64(25)}); err != nil {
		t.Fatal(err)
	}
	if carol, err = tx.CreateNode("Person", map[string]any{"name": "carol", "age": int64(35)}); err != nil {
		t.Fatal(err)
	}
	if _, err = tx.CreateRel(alice, bob, "knows", map[string]any{"since": int64(2019)}); err != nil {
		t.Fatal(err)
	}
	if _, err = tx.CreateRel(bob, carol, "knows", nil); err != nil {
		t.Fatal(err)
	}
	if err = tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return
}

func friendsPlan() *query.Plan {
	return &query.Plan{Root: &query.Project{
		Input: &query.GetNode{
			Input: &query.Expand{
				Input: &query.Filter{
					Input: &query.NodeScan{Label: "Person"},
					Pred:  &query.Cmp{Op: query.Eq, L: &query.Prop{Col: 0, Key: "name"}, R: &query.Param{Name: "who"}},
				},
				Col: 0, Dir: query.Out, RelLabel: "knows",
			},
			RelCol: 1, End: query.Dst,
		},
		Cols: []query.Expr{&query.Prop{Col: 2, Key: "name"}},
	}}
}

func TestQuickstartAllModes(t *testing.T) {
	for _, mode := range []Mode{PMem, DRAM} {
		t.Run(mode.String(), func(t *testing.T) {
			db := openTestDB(t, mode)
			seedSocial(t, db)
			for _, em := range []ExecMode{Interpret, Parallel, JIT, Adaptive} {
				rows, err := db.QueryMode(friendsPlan(), query.Params{"who": "alice"}, em)
				if err != nil {
					t.Fatalf("mode %d: %v", em, err)
				}
				if len(rows) != 1 || rows[0][0] != "bob" {
					t.Errorf("mode %d: rows = %v, want [[bob]]", em, rows)
				}
			}
		})
	}
}

func TestIndexedQuery(t *testing.T) {
	db := openTestDB(t, PMem)
	seedSocial(t, db)
	if err := db.CreateIndex("Person", "name", HybridIndex); err != nil {
		t.Fatal(err)
	}
	plan := &query.Plan{Root: &query.Project{
		Input: &query.IndexScan{Label: "Person", Key: "name", Value: &query.Param{Name: "n"}},
		Cols:  []query.Expr{&query.Prop{Col: 0, Key: "age"}},
	}}
	rows, err := db.Query(plan, query.Params{"n": "carol"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != int64(35) {
		t.Errorf("rows = %v", rows)
	}
}

func TestExecAndCounts(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	if db.NodeCount() != 3 || db.RelCount() != 2 {
		t.Fatalf("counts = %d/%d", db.NodeCount(), db.RelCount())
	}
	n, err := db.Exec(&query.Plan{Root: &query.CreateNode{
		Label: "Person",
		Props: []query.PropSpec{{Key: "name", Val: &query.Param{Name: "n"}}},
	}}, query.Params{"n": "dave"})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || db.NodeCount() != 4 {
		t.Errorf("exec rows=%d nodes=%d", n, db.NodeCount())
	}
}

func TestCrashRecoveryThroughFacade(t *testing.T) {
	db, err := Open(Config{Mode: PMem, PoolSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	alice, _, _ := seedSocial(t, db)
	dev := db.Crash()

	db2, err := Reopen(dev, Config{Mode: PMem})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tx := db2.Begin()
	defer tx.Abort()
	snap, err := tx.GetNode(alice)
	if err != nil {
		t.Fatal(err)
	}
	props, err := db2.Engine().DecodeProps(snap.Props())
	if err != nil {
		t.Fatal(err)
	}
	if props["name"] != "alice" {
		t.Errorf("props after crash = %v", props)
	}
	rows, err := db2.Query(friendsPlan(), query.Params{"who": "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "bob" {
		t.Errorf("friends after crash = %v", rows)
	}
}

func TestSnapshotIsolationThroughFacade(t *testing.T) {
	db := openTestDB(t, PMem)
	alice, _, _ := seedSocial(t, db)

	reader := db.Begin()
	writer := db.Begin()
	if err := writer.SetNodeProps(alice, map[string]any{"age": int64(31)}); err != nil {
		t.Fatal(err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
	agePlan := &query.Plan{Root: &query.Project{
		Input: &query.NodeByID{Param: "id"},
		Cols:  []query.Expr{&query.Prop{Col: 0, Key: "age"}},
	}}
	rows, err := db.QueryTx(reader, agePlan, query.Params{"id": int64(alice)}, Interpret)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != int64(30) {
		t.Errorf("old reader sees age %v, want 30", rows[0][0])
	}
	reader.Abort()
	rows, _ = db.Query(agePlan, query.Params{"id": int64(alice)})
	if rows[0][0] != int64(31) {
		t.Errorf("new reader sees age %v, want 31", rows[0][0])
	}
}

func TestParallelMatchesInterpretOnLargerData(t *testing.T) {
	db := openTestDB(t, DRAM)
	tx := db.Begin()
	for i := 0; i < 3000; i++ {
		if _, err := tx.CreateNode("N", map[string]any{"v": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	plan := &query.Plan{Root: &query.Project{
		Input: &query.Filter{
			Input: &query.NodeScan{Label: "N"},
			Pred:  &query.Cmp{Op: query.Lt, L: &query.Prop{Col: 0, Key: "v"}, R: &query.Const{Val: 50}},
		},
		Cols: []query.Expr{&query.Prop{Col: 0, Key: "v"}},
	}}
	a, err := db.QueryMode(plan, nil, Interpret)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.QueryMode(plan, nil, Parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("row counts: %d vs %d", len(a), len(b))
	}
	sortAny := func(rows [][]any) {
		sort.Slice(rows, func(i, j int) bool { return rows[i][0].(int64) < rows[j][0].(int64) })
	}
	sortAny(a)
	sortAny(b)
	for i := range a {
		if a[i][0] != b[i][0] {
			t.Fatalf("row %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCypherFacade(t *testing.T) {
	db := openTestDB(t, PMem)
	if _, err := db.Cypher(`CREATE (p:Person {name: 'ada', age: 36})`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cypher(`CREATE (p:Person {name: 'bob', age: 25})`, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("Person", "name", HybridIndex); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cypher(
		`MATCH (a:Person {name: $a}), (b:Person {name: $b}) CREATE (a)-[:knows {since: 2020}]->(b)`,
		query.Params{"a": "ada", "b": "bob"}); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []ExecMode{Interpret, JIT, Adaptive} {
		rows, err := db.CypherMode(
			`MATCH (a:Person)-[r:knows]->(b) WHERE r.since >= 2020 RETURN a.name, b.name, r.since`,
			nil, mode)
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if len(rows) != 1 || rows[0][0] != "ada" || rows[0][1] != "bob" || rows[0][2] != int64(2020) {
			t.Errorf("mode %d rows = %v", mode, rows)
		}
	}
	// Updates survive a crash like any transaction.
	dev := db.Crash()
	db2, err := Reopen(dev, Config{Mode: PMem})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rows, err := db2.Cypher(`MATCH (p:Person) RETURN COUNT(*)`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != int64(2) {
		t.Errorf("post-crash count = %v", rows[0][0])
	}
}

func TestCypherErrorsSurface(t *testing.T) {
	db := openTestDB(t, DRAM)
	if _, err := db.Cypher(`MATCH (p RETURN p`, nil); err == nil {
		t.Error("syntax error not surfaced")
	}
	if _, err := db.Cypher(`MATCH (p:Person) RETURN q.name`, nil); err == nil {
		t.Error("unknown variable not surfaced")
	}
}

func TestCypherUpdatesUnderJIT(t *testing.T) {
	db := openTestDB(t, DRAM)
	if err := db.CreateIndex("Person", "name", VolatileIndex); err != nil {
		t.Fatal(err)
	}
	// A standalone multi-create compiled and executed by the JIT.
	if _, err := db.CypherMode(
		`CREATE (f:Forum {title: 'g'})-[:hasModerator]->(p:Person {name: 'mod'})`,
		nil, JIT); err != nil {
		t.Fatal(err)
	}
	if db.NodeCount() != 2 || db.RelCount() != 1 {
		t.Fatalf("counts = %d/%d", db.NodeCount(), db.RelCount())
	}
	// A matched create under JIT (IU-style).
	if _, err := db.CypherMode(`CREATE (q:Person {name: 'solo'})`, nil, JIT); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CypherMode(
		`MATCH (a:Person {name: 'mod'}), (b:Person {name: 'solo'}) CREATE (a)-[:knows]->(b)`,
		nil, JIT); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Cypher(`MATCH (a:Person {name: 'mod'})-[:knows]->(b) RETURN b.name`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "solo" {
		t.Errorf("rows = %v", rows)
	}
}

func TestExplain(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	out, err := db.ExplainCypher(`MATCH (p:Person) RETURN p.name ORDER BY p.name LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"signature:", "NodeScan(Person)", "tail ops:  2", "jit:       compiled", "morsel-driven"} {
		if !containsStr(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Join plans are honest about their limits.
	join := &query.Plan{Root: &query.HashJoin{
		Left: &query.NodeScan{}, Right: &query.NodeScan{},
		LKey: &query.IDOf{Col: 0}, RKey: &query.IDOf{Col: 0},
	}}
	out = db.Explain(join)
	if !containsStr(out, "interpreter only") || !containsStr(out, "not compilable") {
		t.Errorf("join explain = %s", out)
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && strings.Contains(s, sub)
}
