// Package poseidon is the public facade of the PMem graph engine: a
// transactional property-graph database designed for persistent memory,
// with MVTO snapshot-isolated transactions, hybrid DRAM/PMem B+-tree
// indexes, a push-based query engine and a JIT query compiler with
// adaptive execution — a from-scratch Go reproduction of "JIT happens:
// Transactional Graph Processing in Persistent Memory meets Just-In-Time
// Compilation" (EDBT 2021).
//
// The execution API is organized around three types. A Stmt is a
// prepared statement — Cypher text or an algebra plan, parsed and
// planned once and cached in the DB with an LRU bound, shared by every
// session. A Session pins per-request defaults (execution mode,
// statement deadline, worker budget) and owns the transactions it
// starts; closing it rolls back whatever is still running. Rows streams
// a result: the query executes in a producer goroutine while the
// consumer pulls rows and decodes values on demand.
//
// Quick start:
//
//	db, err := poseidon.Open(poseidon.Config{})
//	tx := db.Begin()
//	alice, _ := tx.CreateNode("Person", map[string]any{"name": "alice"})
//	bob, _ := tx.CreateNode("Person", map[string]any{"name": "bob"})
//	tx.CreateRel(alice, bob, "knows", nil)
//	tx.Commit()
//
//	sess := db.NewSession(poseidon.SessionConfig{Mode: poseidon.Parallel, Timeout: time.Second})
//	defer sess.Close()
//	stmt, _ := db.Prepare(`MATCH (p:Person) RETURN p.name`)
//	rows, _ := sess.Query(ctx, stmt, nil)
//	defer rows.Close()
//	for rows.Next() {
//		var name string
//		rows.Scan(&name)
//	}
//
// Every entry point has a context-carrying variant (QueryCtx, ExecCtx,
// CypherCtx, ...); cancelling the context — or exceeding a deadline —
// aborts execution between records in all four execution modes,
// including the morsel-parallel and JIT-compiled ones, and rolls the
// transaction back.
//
// The heavy lifting lives in the internal packages: pmem (simulated
// persistent memory), pmemobj (PMDK-like pools and failure-atomic
// transactions), storage (chunked record tables), dict (persistent
// dictionary), index (B+-trees), core (the MVTO engine), query (algebra
// and interpreter), jit (IR, optimizer, closure backend, code cache),
// ldbc (the SNB-like workload) and diskstore (the disk baseline).
package poseidon

import (
	"context"
	"fmt"
	"strings"

	"poseidon/internal/core"
	"poseidon/internal/cypher"
	"poseidon/internal/index"
	"poseidon/internal/jit"
	"poseidon/internal/pmem"
	"poseidon/internal/query"
	"poseidon/internal/trace"
)

// Mode selects the storage medium.
type Mode = core.Mode

// Storage modes.
const (
	// PMem keeps primary data in simulated persistent memory with
	// Optane-like latencies; data survives DB.Crash.
	PMem = core.PMem
	// DRAM runs the identical engine on volatile zero-latency memory
	// (the paper's dram baseline).
	DRAM = core.DRAM
)

// IndexKind selects a secondary-index variant.
type IndexKind = index.Kind

// Index variants (paper §4.2 / Fig 8). HybridIndex is the recommended
// default: PMem leaves with DRAM inner nodes.
const (
	VolatileIndex   = index.Volatile
	HybridIndex     = index.Hybrid
	PersistentIndex = index.Persistent
)

// ExecMode selects how DB.Query executes a plan.
type ExecMode int

// Execution modes (§6).
const (
	// Interpret uses the AOT-compiled push-based interpreter.
	Interpret ExecMode = iota
	// Parallel uses morsel-driven parallel interpretation.
	Parallel
	// JIT compiles the pipeline to specialized code (cached) and runs it.
	JIT
	// Adaptive interprets morsels while compiling in the background, then
	// switches to compiled code (§6.2 "Adaptive Execution").
	Adaptive
)

func (m ExecMode) String() string {
	switch m {
	case Interpret:
		return "interpret"
	case Parallel:
		return "parallel"
	case JIT:
		return "jit"
	case Adaptive:
		return "adaptive"
	}
	return "unknown"
}

// Config configures a database.
type Config struct {
	// Mode selects PMem (default) or DRAM.
	Mode Mode
	// PoolSize is the device capacity in bytes (default 256 MiB).
	PoolSize int
	// Workers bounds Parallel/Adaptive execution (0 = GOMAXPROCS).
	Workers int
	// Shards is the engine-core shard count: per-shard MVTO state,
	// secondary-index slices and commit locks (0 = GOMAXPROCS, capped at
	// 64; 1 = the unsharded single-monitor engine). See core.Config.
	Shards int
	// StmtCacheSize bounds the shared prepared-statement LRU cache
	// (0 = default 256, negative = unbounded).
	StmtCacheSize int
	// Telemetry enables engine-wide metrics, query-stage tracing and the
	// slow-query log (see TelemetryConfig). Off by default: the hot paths
	// then pay a single nil-check branch.
	Telemetry TelemetryConfig
	// GroupCommit batches concurrent single-shard committers into shared
	// commit epochs (one drain/fence cycle per epoch). See
	// core.GroupCommitConfig; zero value = off, per-transaction commits.
	GroupCommit core.GroupCommitConfig
	// IndexDelta absorbs secondary-index maintenance into per-tree
	// LSM-style delta regions, publishing once per commit epoch. See
	// core.IndexDeltaConfig; zero value = off.
	IndexDelta core.IndexDeltaConfig
}

// defaultStmtCacheSize bounds the statement cache when Config leaves it 0.
const defaultStmtCacheSize = 256

// DB is a Poseidon graph database.
type DB struct {
	engine  *core.Engine
	jit     *jit.Engine
	workers int
	stmts   *stmtCache
	tel     *dbTelemetry  // nil when telemetry is disabled
	tracer  *trace.Tracer // nil when request tracing is disabled
}

// Tx is a snapshot-isolated MVTO transaction. See core.Tx for the full
// API: CreateNode, CreateRel, GetNode, GetRel, SetNodeProps, SetRelProps,
// DeleteNode, DetachDeleteNode, DeleteRel, OutRels, InRels, ScanNodes,
// Commit, Abort.
type Tx = core.Tx

// stmtCacheCap resolves the configured statement-cache bound.
func stmtCacheCap(cfg Config) int {
	switch {
	case cfg.StmtCacheSize > 0:
		return cfg.StmtCacheSize
	case cfg.StmtCacheSize < 0:
		return 0 // unbounded
	default:
		return defaultStmtCacheSize
	}
}

// Open creates a new database.
func Open(cfg Config) (*DB, error) {
	e, err := core.Open(core.Config{Mode: cfg.Mode, PoolSize: cfg.PoolSize, Shards: cfg.Shards, GroupCommit: cfg.GroupCommit, IndexDelta: cfg.IndexDelta})
	if err != nil {
		return nil, err
	}
	j, err := jit.New(e)
	if err != nil {
		e.Close()
		return nil, err
	}
	db := &DB{engine: e, jit: j, workers: cfg.Workers, stmts: newStmtCache(stmtCacheCap(cfg))}
	db.tracer = newTracer(cfg.Telemetry)
	db.tel = newDBTelemetry(db, cfg.Telemetry)
	db.installTracer()
	return db, nil
}

// Reopen attaches to the device of a previously opened PMem database,
// running crash recovery. Use db.Device() to obtain the device before a
// crash.
func Reopen(dev *pmem.Device, cfg Config) (*DB, error) {
	e, err := core.Reopen(dev, core.Config{Mode: cfg.Mode, PoolSize: cfg.PoolSize, Shards: cfg.Shards, GroupCommit: cfg.GroupCommit, IndexDelta: cfg.IndexDelta})
	if err != nil {
		return nil, err
	}
	j, err := jit.New(e)
	if err != nil {
		e.Close()
		return nil, err
	}
	db := &DB{engine: e, jit: j, workers: cfg.Workers, stmts: newStmtCache(stmtCacheCap(cfg))}
	db.tracer = newTracer(cfg.Telemetry)
	db.tel = newDBTelemetry(db, cfg.Telemetry)
	db.installTracer()
	return db, nil
}

// Close releases the database. The underlying device stays usable for
// Reopen.
func (db *DB) Close() { db.engine.Close() }

// Engine exposes the underlying graph engine.
func (db *DB) Engine() *core.Engine { return db.engine }

// Device exposes the simulated memory device (for crash testing, stats
// and Save/Load persistence across processes).
func (db *DB) Device() *pmem.Device { return db.engine.Device() }

// Begin starts a transaction.
func (db *DB) Begin() *Tx { return db.engine.Begin() }

// CreateIndex builds a secondary index over the given node label and
// property and keeps it maintained by every commit. Cached statements
// are invalidated: the planner's access-path choice depends on which
// indexes exist, so plans prepared before the index would keep scanning.
func (db *DB) CreateIndex(label, key string, kind IndexKind) error {
	if err := db.engine.CreateIndex(label, key, kind); err != nil {
		return err
	}
	db.stmts.purge()
	return nil
}

// Query runs a plan in a fresh read-only transaction with the default
// (Interpret) mode and returns all rows decoded to Go values. Plans
// containing updates are rejected with ErrUpdatePlan — the transaction
// is always rolled back, so the updates would silently vanish; use Exec
// instead.
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (db *DB) Query(plan *query.Plan, params query.Params) ([][]any, error) {
	return db.QueryModeCtx(context.Background(), plan, params, Interpret)
}

// QueryCtx is Query with a context: cancellation aborts execution
// between records and rolls the transaction back.
func (db *DB) QueryCtx(ctx context.Context, plan *query.Plan, params query.Params) ([][]any, error) {
	return db.QueryModeCtx(ctx, plan, params, Interpret)
}

// QueryMode runs a plan with an explicit execution mode. Like Query it
// rejects update plans with ErrUpdatePlan.
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (db *DB) QueryMode(plan *query.Plan, params query.Params, mode ExecMode) ([][]any, error) {
	return db.QueryModeCtx(context.Background(), plan, params, mode)
}

// QueryModeCtx is QueryMode with a context.
func (db *DB) QueryModeCtx(ctx context.Context, plan *query.Plan, params query.Params, mode ExecMode) ([][]any, error) {
	if plan.HasUpdates() {
		return nil, ErrUpdatePlan
	}
	tx := db.engine.Begin()
	defer tx.Abort()
	return db.QueryTxCtx(ctx, tx, plan, params, mode)
}

// QueryTx runs a plan inside an existing transaction, so updates observe
// and join the transaction's effects; committing remains the caller's
// job.
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (db *DB) QueryTx(tx *Tx, plan *query.Plan, params query.Params, mode ExecMode) ([][]any, error) {
	return db.QueryTxCtx(context.Background(), tx, plan, params, mode)
}

// QueryTxCtx is QueryTx with a context. On cancellation the transaction
// is aborted mid-scan and the context's error returned.
func (db *DB) QueryTxCtx(ctx context.Context, tx *Tx, plan *query.Plan, params query.Params, mode ExecMode) ([][]any, error) {
	stmt, err := db.PreparePlan(plan)
	if err != nil {
		return nil, err
	}
	return db.collect(ctx, tx, stmt, params, mode)
}

// collect runs stmt in tx and materializes the decoded result.
func (db *DB) collect(ctx context.Context, tx *Tx, stmt *Stmt, params query.Params, mode ExecMode) ([][]any, error) {
	var raw []query.Row
	if err := stmt.run(ctx, tx, params, mode, db.workers, func(r query.Row) bool {
		raw = append(raw, r)
		return true
	}); err != nil {
		return nil, err
	}
	out := make([][]any, len(raw))
	for i, r := range raw {
		row := make([]any, len(r))
		for k, v := range r {
			gv, err := db.engine.DecodeValue(v)
			if err != nil {
				return nil, err
			}
			row[k] = gv
		}
		out[i] = row
	}
	return out, nil
}

// Exec runs an update plan inside a fresh transaction and commits it,
// returning the number of result rows.
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (db *DB) Exec(plan *query.Plan, params query.Params) (int, error) {
	return db.ExecCtx(context.Background(), plan, params)
}

// ExecCtx is Exec with a context. A cancelled context rolls the
// transaction back — partially applied updates never commit.
func (db *DB) ExecCtx(ctx context.Context, plan *query.Plan, params query.Params) (int, error) {
	stmt, err := db.PreparePlan(plan)
	if err != nil {
		return 0, err
	}
	tx := db.engine.Begin()
	n := 0
	if err := stmt.run(ctx, tx, params, Interpret, db.workers, func(query.Row) bool { n++; return true }); err != nil {
		tx.Abort()
		return 0, err
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return n, nil
}

// Cypher parses and runs a Cypher-like statement (the paper's §1 "we
// support Cypher-like navigational queries") in its own transaction,
// committing updates. Values are decoded to Go types. Statements go
// through the prepared-statement cache, so repeating one costs a single
// parse/plan (see CacheStats).
//
//	rows, err := db.Cypher(`MATCH (p:Person {name: $n})-[:knows]->(f)
//	                        RETURN f.name ORDER BY f.name`, query.Params{"n": "ada"})
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (db *DB) Cypher(src string, params query.Params) ([][]any, error) {
	return db.CypherModeCtx(context.Background(), src, params, Interpret)
}

// CypherCtx is Cypher with a context.
func (db *DB) CypherCtx(ctx context.Context, src string, params query.Params) ([][]any, error) {
	return db.CypherModeCtx(ctx, src, params, Interpret)
}

// CypherMode runs a Cypher-like statement with an explicit execution
// mode. Read-only statements may use any mode; updates run reliably under
// Interpret and JIT.
//
//poseidonlint:ignore ctx-threading legacy pre-session shim; kept per the CHANGES.md migration table
func (db *DB) CypherMode(src string, params query.Params, mode ExecMode) ([][]any, error) {
	return db.CypherModeCtx(context.Background(), src, params, mode)
}

// CypherModeCtx is CypherMode with a context: cancellation aborts the
// statement's transaction, committing nothing.
func (db *DB) CypherModeCtx(ctx context.Context, src string, params query.Params, mode ExecMode) ([][]any, error) {
	stmt, err := db.Prepare(src)
	if err != nil {
		return nil, err
	}
	tx := db.engine.Begin()
	rows, err := db.collect(ctx, tx, stmt, params, mode)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	return rows, nil
}

// Explain describes how a plan would execute: its signature (the
// compiled-code cache key), whether the JIT can compile it, and how the
// morsel-driven executor would split it.
//
//poseidonlint:ignore ctx-threading synchronous diagnostic helper; the compile probe is bounded and usually a code-cache hit
func (db *DB) Explain(plan *query.Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "signature: %s\n", plan.Signature())
	if mp, ok := query.SplitPipeline(plan); ok {
		fmt.Fprintf(&b, "pipeline:  %s\n", (&query.Plan{Root: mp.Pipeline}).Signature())
		fmt.Fprintf(&b, "tail ops:  %d (materializing breaker and everything above it)\n", len(mp.Tail))
	} else {
		b.WriteString("pipeline:  not single-chain (join): interpreter only\n")
	}
	if c, err := db.jit.Compile(plan); err == nil {
		fmt.Fprintf(&b, "jit:       compiled in %v (cache hit: %v)\n", c.CompileTime, c.FromCache)
	} else {
		fmt.Fprintf(&b, "jit:       not compilable (%v)\n", err)
	}
	if _, ok := query.SplitForMorsels(plan); ok {
		b.WriteString("parallel:  morsel-driven scan\n")
	} else {
		b.WriteString("parallel:  single-threaded (point access or updates)\n")
	}
	return b.String()
}

// ExplainCypher parses a Cypher statement and explains its plan.
func (db *DB) ExplainCypher(src string) (string, error) {
	plan, err := cypher.Plan(db.engine, src)
	if err != nil {
		return "", err
	}
	return db.Explain(plan), nil
}

// Crash simulates a power failure on a PMem database: everything not yet
// persisted is lost. Reopen the device to recover.
func (db *DB) Crash() *pmem.Device {
	dev := db.engine.Device()
	db.engine.Close()
	dev.Crash()
	return dev
}

// NodeCount returns the number of allocated node records.
func (db *DB) NodeCount() uint64 { return db.engine.NodeCount() }

// RelCount returns the number of allocated relationship records.
func (db *DB) RelCount() uint64 { return db.engine.RelCount() }
