package poseidon

import (
	"context"
	"strings"
	"testing"
)

// Edge cases at the seams of the shared prepared-statement cache: the
// cache may drop an entry at any time (CreateIndex purge, LRU eviction),
// but statements already handed out must keep working — including ones
// currently driving a streaming cursor.

func newEdgeDB(t *testing.T, cacheSize int) *DB {
	t.Helper()
	db, err := Open(Config{Mode: DRAM, PoolSize: 16 << 20, StmtCacheSize: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	for _, src := range []string{
		`CREATE (a:Person {id: 1, name: 'ada', age: 36})`,
		`CREATE (b:Person {id: 2, name: 'bob', age: 25})`,
		`CREATE (c:Person {id: 3, name: 'cleo', age: 41})`,
	} {
		if _, err := db.Cypher(src, nil); err != nil {
			t.Fatalf("seed %q: %v", src, err)
		}
	}
	return db
}

const edgeQuery = `MATCH (p:Person) WHERE p.id >= 1 RETURN p.name ORDER BY p.name`

func TestStmtSurvivesCreateIndexPurgeMidStream(t *testing.T) {
	db := newEdgeDB(t, 0)
	st, err := db.Prepare(edgeQuery)
	if err != nil {
		t.Fatal(err)
	}

	sess := db.NewSession(SessionConfig{})
	defer sess.Close()
	rows, err := sess.Query(context.Background(), st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}

	// Invalidate the cache while the cursor is mid-stream. The planner's
	// access-path choice changed, but the old statement's plan stays valid.
	if err := db.CreateIndex("Person", "id", HybridIndex); err != nil {
		t.Fatal(err)
	}
	if db.CacheStats().Size != 0 {
		t.Fatalf("cache not purged: %+v", db.CacheStats())
	}

	got := []string{}
	for {
		var name string
		if err := rows.Scan(&name); err != nil {
			t.Fatal(err)
		}
		got = append(got, name)
		if !rows.Next() {
			break
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if want := "ada,bob,cleo"; strings.Join(got, ",") != want {
		t.Fatalf("streamed rows = %v, want %s", got, want)
	}

	// The detached statement also still runs from scratch.
	rows2, err := sess.Query(context.Background(), st, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := rows2.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("re-run rows = %d, want 3", len(out))
	}
}

func TestStmtSurvivesLRUEvictionWithOpenRows(t *testing.T) {
	db := newEdgeDB(t, 1) // every new statement evicts the previous one
	st, err := db.Prepare(edgeQuery)
	if err != nil {
		t.Fatal(err)
	}
	sess := db.NewSession(SessionConfig{})
	defer sess.Close()
	rows, err := sess.Query(context.Background(), st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}

	// Prepare two more distinct statements: the first evicts st, the
	// second evicts the first.
	if _, err := db.Prepare(`MATCH (p:Person) RETURN p.age`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare(`MATCH (p:Person) RETURN COUNT(*)`); err != nil {
		t.Fatal(err)
	}
	stats := db.CacheStats()
	if stats.Evictions < 2 || stats.Size != 1 {
		t.Fatalf("expected 2 evictions down to size 1, got %+v", stats)
	}

	n := 1
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("streamed %d rows from evicted statement, want 3", n)
	}
}

func TestRePrepareAfterIndexInvalidation(t *testing.T) {
	db := newEdgeDB(t, 0)
	src := `MATCH (p:Person {id: $id}) RETURN p.name`
	st1, err := db.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := db.Prepare(src); again != st1 {
		t.Fatal("second Prepare did not hit the cache")
	}
	if strings.Contains(db.Explain(st1.Plan()), "IndexScan") {
		t.Fatal("pre-index plan already uses IndexScan")
	}

	if err := db.CreateIndex("Person", "id", HybridIndex); err != nil {
		t.Fatal(err)
	}
	missesBefore := db.CacheStats().Misses
	st2, err := db.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if st2 == st1 {
		t.Fatal("Prepare returned the purged statement; the new index is invisible")
	}
	if got := db.CacheStats().Misses; got != missesBefore+1 {
		t.Fatalf("misses = %d, want %d (re-prepare must miss after purge)", got, missesBefore+1)
	}
	if !strings.Contains(db.Explain(st2.Plan()), "IndexScan") {
		t.Fatalf("re-prepared plan ignores the new index:\n%s", db.Explain(st2.Plan()))
	}

	// Both generations execute correctly.
	for _, st := range []*Stmt{st1, st2} {
		sess := db.NewSession(SessionConfig{})
		rows, err := sess.Query(context.Background(), st, map[string]any{"id": int64(2)})
		if err != nil {
			t.Fatal(err)
		}
		out, err := rows.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 || out[0][0] != "bob" {
			t.Fatalf("rows = %v, want [[bob]]", out)
		}
		sess.Close()
	}
}
