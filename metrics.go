package poseidon

import (
	"net/http"
	"runtime"
	"strconv"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/jit"
	"poseidon/internal/pmem"
	"poseidon/internal/telemetry"
	"poseidon/internal/trace"
)

// TelemetryConfig enables and tunes the engine-wide measurement
// substrate: metrics (exposed through DB.Metrics and the Prometheus
// endpoint), per-query stage traces, and the slow-query log. When
// Enabled is false (the default), the engine holds nil metric handles
// everywhere and the hot paths pay a single branch — no allocation, no
// atomic write.
type TelemetryConfig struct {
	// Enabled turns telemetry on.
	Enabled bool
	// SlowQueryThreshold is the total-latency threshold above which a
	// query's full stage trace is retained (default 100ms; negative
	// disables the slow-query log while keeping metrics).
	SlowQueryThreshold time.Duration
	// SlowQueryLogSize bounds the slow-query ring buffer (default 64).
	SlowQueryLogSize int
	// Trace enables per-request span tracing (see TraceConfig). It is
	// independent of Enabled: tracing can run without the metrics
	// registry, and vice versa.
	Trace TraceConfig
}

// defaultSlowQueryThreshold applies when TelemetryConfig leaves it 0.
const defaultSlowQueryThreshold = 100 * time.Millisecond

// dbTelemetry bundles the registry, the facade-level metric handles and
// the slow-query log. A nil *dbTelemetry is the disabled state.
type dbTelemetry struct {
	reg  *telemetry.Registry
	slow *telemetry.SlowQueryLog

	// Facade (query/session) handles.
	queriesTotal   [4]*telemetry.Counter // indexed by ExecMode
	queryErrors    *telemetry.Counter
	rowsStreamed   *telemetry.Counter
	slowQueries    *telemetry.Counter
	queryLatency   *telemetry.Histogram
	sessionsActive *telemetry.Gauge

	// Lower-layer handles are kept here too so Metrics() can snapshot
	// them without reaching into the subsystems.
	coreTel core.Telemetry
	jitTel  jit.Telemetry

	// server holds the network-front-door handles once RegisterServer
	// has been called (nil on an in-process-only DB).
	server *ServerTelemetry
}

// newDBTelemetry builds the registry, registers every metric family in
// exposition order, and installs the handles into the core and JIT
// engines. Returns nil when telemetry is disabled.
func newDBTelemetry(db *DB, cfg TelemetryConfig) *dbTelemetry {
	if !cfg.Enabled {
		return nil
	}
	threshold := cfg.SlowQueryThreshold
	if threshold == 0 {
		threshold = defaultSlowQueryThreshold
	}
	reg := telemetry.NewRegistry()
	t := &dbTelemetry{
		reg:  reg,
		slow: telemetry.NewSlowQueryLog(threshold, cfg.SlowQueryLogSize),
	}

	// PMem device counters are sampled from the device's own atomics at
	// scrape time — re-exporting them costs the hot path nothing.
	stats := &db.engine.Device().Stats
	reg.CounterFunc("poseidon_pmem_reads_total", "8-byte loads from the (P)Mem device.", stats.Reads.Load)
	reg.CounterFunc("poseidon_pmem_writes_total", "8-byte stores to the (P)Mem device.", stats.Writes.Load)
	reg.CounterFunc("poseidon_pmem_cache_hits_total", "Device loads served by the simulated CPU cache.", stats.CacheHits.Load)
	reg.CounterFunc("poseidon_pmem_cache_misses_total", "Device loads that paid the media read latency.", stats.CacheMisses.Load)
	reg.CounterFunc("poseidon_pmem_line_flushes_total", "clwb-equivalent cache-line flushes.", stats.LineFlushes.Load)
	reg.CounterFunc("poseidon_pmem_block_writes_total", "256-byte internal media block writes (write amplification, C3).", stats.BlockWrites.Load)
	reg.CounterFunc("poseidon_pmem_drains_total", "sfence-equivalent persistence barriers.", stats.Drains.Load)
	reg.CounterFunc("poseidon_pmem_crashes_total", "Simulated power failures.", stats.Crashes.Load)

	// MVTO transaction counters.
	t.coreTel.TxBegun = reg.Counter("poseidon_tx_begun_total", "Transactions started.")
	t.coreTel.TxCommits = reg.Counter("poseidon_tx_commits_total", "Transactions committed (including read-only).")
	for r := 0; r < core.NumAbortReasons; r++ {
		reason := core.AbortReason(r)
		t.coreTel.TxAborts[r] = reg.Counter("poseidon_tx_aborts_total",
			"Transactions aborted, by MVTO reason.",
			telemetry.Label{Key: "reason", Value: reason.String()})
	}
	reg.GaugeFunc("poseidon_txs_active", "Transactions currently in flight.",
		func() float64 { return float64(db.engine.ActiveTxs()) })

	// Sharded-core contention and balance series, sampled from the
	// engine's per-shard atomics at scrape time. The shard count is fixed
	// at open, so one labelled series per shard is known up front.
	reg.GaugeFunc("poseidon_shards", "Configured shard count of the engine core.",
		func() float64 { return float64(db.engine.Shards()) })
	reg.CounterFunc("poseidon_shard_cross_commits_total",
		"Commits whose lock set spanned more than one shard.",
		func() uint64 { _, cross := db.engine.ShardStatsSnapshot(); return cross })
	for s := 0; s < db.engine.Shards(); s++ {
		s := s
		lbl := telemetry.Label{Key: "shard", Value: strconv.Itoa(s)}
		reg.CounterFunc("poseidon_shard_commits_total",
			"Commits whose lock set included the shard.",
			func() uint64 { st, _ := db.engine.ShardStatsSnapshot(); return st[s].Commits }, lbl)
		reg.CounterFunc("poseidon_shard_lock_wait_ns_total",
			"Cumulative wait for the shard's commit lock, in nanoseconds.",
			func() uint64 { st, _ := db.engine.ShardStatsSnapshot(); return st[s].LockWaitNs }, lbl)
		reg.CounterFunc("poseidon_shard_lock_contended_total",
			"Commit-lock acquisitions that found the lock held (TryLock miss).",
			func() uint64 { st, _ := db.engine.ShardStatsSnapshot(); return st[s].LockContended }, lbl)
		reg.CounterFunc("poseidon_shard_inserts_total",
			"Records placed in the shard at operation time.",
			func() uint64 { st, _ := db.engine.ShardStatsSnapshot(); return st[s].HomeInserts }, lbl)
	}
	reg.GaugeFunc("poseidon_shard_commit_imbalance",
		"Max-over-mean per-shard commit count (1.0 = perfectly balanced, 0 = no commits).",
		func() float64 {
			st, _ := db.engine.ShardStatsSnapshot()
			var total, max uint64
			for _, s := range st {
				total += s.Commits
				if s.Commits > max {
					max = s.Commits
				}
			}
			if total == 0 {
				return 0
			}
			return float64(max) * float64(len(st)) / float64(total)
		})
	t.coreTel.ChainWalk = reg.Histogram("poseidon_mvto_chain_walk_length",
		"Versions inspected per DRAM version-chain lookup.",
		telemetry.LengthBuckets(64), 1)

	// Group-commit epoch counters, sampled from the engine's atomics.
	reg.CounterFunc("poseidon_group_commit_epochs_total",
		"Commit epochs persisted by group-commit leaders.",
		func() uint64 { ep, _, _ := db.engine.GroupCommitStats(); return ep })
	reg.CounterFunc("poseidon_group_commit_txs_total",
		"Transactions committed through group-commit epochs.",
		func() uint64 { _, txs, _ := db.engine.GroupCommitStats(); return txs })
	reg.CounterFunc("poseidon_group_commit_splits_total",
		"Epochs split to fit the shard undo-log lane budget.",
		func() uint64 { _, _, sp := db.engine.GroupCommitStats(); return sp })

	// JIT compiler counters.
	t.jitTel.Compiles = reg.Counter("poseidon_jit_compiles_total", "Full plan compilations (both cache tiers missed).")
	t.jitTel.CompileTime = reg.Histogram("poseidon_jit_compile_seconds",
		"Full-compilation wall time.", telemetry.LatencyBuckets(), 1e9)
	t.jitTel.MemHits = reg.Counter("poseidon_jit_code_cache_hits_total",
		"Code-cache hits, by tier.", telemetry.Label{Key: "tier", Value: "memory"})
	t.jitTel.PersistHits = reg.Counter("poseidon_jit_code_cache_hits_total",
		"Code-cache hits, by tier.", telemetry.Label{Key: "tier", Value: "persistent"})
	t.jitTel.MorselsInterpreted = reg.Counter("poseidon_jit_morsels_total",
		"Morsels processed by the adaptive executor, by path.",
		telemetry.Label{Key: "path", Value: "interpreted"})
	t.jitTel.MorselsCompiled = reg.Counter("poseidon_jit_morsels_total",
		"Morsels processed by the adaptive executor, by path.",
		telemetry.Label{Key: "path", Value: "compiled"})
	t.jitTel.Switchovers = reg.Counter("poseidon_jit_adaptive_switchovers_total",
		"Adaptive runs that flipped from interpretation to compiled code mid-query.")

	// Statement cache, sampled at scrape time from its own counters.
	stmts := db.stmts
	reg.CounterFunc("poseidon_stmt_cache_hits_total", "Prepared-statement cache hits.",
		func() uint64 { return stmts.stats().Hits })
	reg.CounterFunc("poseidon_stmt_cache_misses_total", "Prepared-statement cache misses (parse/plan/prepare).",
		func() uint64 { return stmts.stats().Misses })
	reg.CounterFunc("poseidon_stmt_cache_evictions_total", "Prepared statements evicted by the LRU bound.",
		func() uint64 { return stmts.stats().Evictions })
	reg.GaugeFunc("poseidon_stmt_cache_size", "Prepared statements currently cached.",
		func() float64 { return float64(stmts.stats().Size) })

	// Query/session layer.
	for m := Interpret; m <= Adaptive; m++ {
		t.queriesTotal[m] = reg.Counter("poseidon_queries_total",
			"Statement executions, by execution mode.",
			telemetry.Label{Key: "mode", Value: m.String()})
	}
	t.queryErrors = reg.Counter("poseidon_query_errors_total", "Statement executions that returned an error.")
	t.rowsStreamed = reg.Counter("poseidon_query_rows_total", "Rows emitted to clients.")
	t.queryLatency = reg.Histogram("poseidon_query_duration_seconds",
		"End-to-end statement latency.", telemetry.LatencyBuckets(), 1e9)
	t.slowQueries = reg.Counter("poseidon_slow_queries_total",
		"Queries whose latency crossed the slow-query threshold.")
	t.sessionsActive = reg.Gauge("poseidon_sessions_active", "Sessions currently open.")

	// Graph size, for dashboards.
	reg.GaugeFunc("poseidon_nodes", "Occupied node slots (all versions).",
		func() float64 { return float64(db.engine.NodeCount()) })
	reg.GaugeFunc("poseidon_rels", "Occupied relationship slots (all versions).",
		func() float64 { return float64(db.engine.RelCount()) })

	db.engine.SetTelemetry(t.coreTel)
	db.jit.SetTelemetry(t.jitTel)
	return t
}

// observeQuery records one statement execution: mode and latency
// counters, row/error accounting, and — over the threshold — the full
// stage trace in the slow-query log.
func (t *dbTelemetry) observeQuery(queryText, traceID string, mode ExecMode, start time.Time,
	total, prep time.Duration, st jit.RunStats, rows int64, delta pmem.StatsSnapshot, err error) {
	if t == nil {
		return
	}
	if mode >= 0 && int(mode) < len(t.queriesTotal) {
		t.queriesTotal[mode].Inc()
	}
	t.queryLatency.ObserveDuration(total)
	t.rowsStreamed.Add(uint64(rows))
	if err != nil {
		t.queryErrors.Inc()
	}
	execTime := st.ExecTime
	if execTime == 0 {
		execTime = total
	}
	trace := telemetry.QueryTrace{
		Query:      queryText,
		TraceID:    traceID,
		Mode:       mode.String(),
		Start:      start,
		Total:      total,
		Parse:      prep,
		Compile:    st.CompileTime,
		Execute:    execTime,
		FromCache:  st.FromCache,
		Rows:       rows,
		PMemReads:  delta.Reads,
		PMemWrites: delta.Writes,
	}
	if err != nil {
		trace.Err = err.Error()
	}
	if t.slow.MaybeRecord(trace) {
		t.slowQueries.Inc()
	}
}

// ServerTelemetry is the handle set a network front door (poseidond)
// records into: connection and in-flight-statement gauges, the
// admission-control reject counter, and one latency histogram per
// request message type. The handles are nil-safe — a server on a
// telemetry-disabled DB records into no-ops — so the server code never
// branches on whether telemetry is on.
type ServerTelemetry struct {
	// ConnsOpen gauges currently open client connections
	// (poseidon_conns_open).
	ConnsOpen *telemetry.Gauge
	// InflightStmts gauges statements admitted and not yet finished —
	// the occupancy of the server's bounded in-flight semaphore
	// (poseidon_inflight_stmts).
	InflightStmts *telemetry.Gauge
	// AdmissionRejects counts requests shed with QUEUE_FULL
	// (poseidon_admission_rejects).
	AdmissionRejects *telemetry.Counter
	// MsgLatency holds per-request-type handle latency histograms
	// (poseidon_server_message_seconds{type=...}).
	MsgLatency map[string]*telemetry.Histogram
}

// Observe records one handled request of the given message type.
func (t *ServerTelemetry) Observe(msgType string, d time.Duration) {
	if t == nil {
		return
	}
	t.MsgLatency[msgType].ObserveDuration(d)
}

// RegisterServer registers the network-server metric series on the
// DB's telemetry registry and returns the handles poseidond records
// into: poseidon_conns_open, poseidon_inflight_stmts,
// poseidon_admission_rejects, poseidon_server_message_seconds{type=...}
// (one per name in msgTypes) and a constant poseidon_build_info gauge
// carrying the build's version as a label. On a telemetry-disabled DB
// the returned handles are valid no-ops. Call it once per DB.
func (db *DB) RegisterServer(version string, msgTypes []string) *ServerTelemetry {
	var reg *telemetry.Registry
	if db.tel != nil {
		reg = db.tel.reg
	}
	st := &ServerTelemetry{
		ConnsOpen:        reg.Gauge("poseidon_conns_open", "Client connections currently open on the network server."),
		InflightStmts:    reg.Gauge("poseidon_inflight_stmts", "Statements admitted and executing on the network server."),
		AdmissionRejects: reg.Counter("poseidon_admission_rejects", "Requests shed with QUEUE_FULL by admission control."),
		MsgLatency:       make(map[string]*telemetry.Histogram, len(msgTypes)),
	}
	reg.GaugeFunc("poseidon_build_info",
		"Constant 1; the labels identify the running build.",
		func() float64 { return 1 },
		telemetry.Label{Key: "version", Value: version},
		telemetry.Label{Key: "go", Value: runtime.Version()})
	for _, mt := range msgTypes {
		st.MsgLatency[mt] = reg.Histogram("poseidon_server_message_seconds",
			"Server-side handle latency, by request message type.",
			telemetry.LatencyBuckets(), 1e9,
			telemetry.Label{Key: "type", Value: mt})
	}
	if db.tel != nil {
		db.tel.server = st
	}
	return st
}

// ServerMetrics is the network-server slice of a Metrics snapshot,
// present once RegisterServer has been called on an instrumented DB.
type ServerMetrics struct {
	ConnsOpen        int64                                  `json:"conns_open"`
	InflightStmts    int64                                  `json:"inflight_stmts"`
	AdmissionRejects uint64                                 `json:"admission_rejects"`
	MsgLatency       map[string]telemetry.HistogramSnapshot `json:"msg_latency"`
}

// TxMetrics is the MVTO transaction slice of a Metrics snapshot.
type TxMetrics struct {
	Begun   uint64            `json:"begun"`
	Commits uint64            `json:"commits"`
	Aborts  map[string]uint64 `json:"aborts"` // by reason
	Active  int               `json:"active"`
	// ChainWalk is the distribution of versions inspected per DRAM
	// version-chain lookup (§5.2).
	ChainWalk telemetry.HistogramSnapshot `json:"chain_walk"`
}

// QueryMetrics is the statement-execution slice of a Metrics snapshot.
type QueryMetrics struct {
	Count   uint64                      `json:"count"`
	ByMode  map[string]uint64           `json:"by_mode"`
	Errors  uint64                      `json:"errors"`
	Rows    uint64                      `json:"rows"`
	Slow    uint64                      `json:"slow"`
	Latency telemetry.HistogramSnapshot `json:"latency"`
}

// JITMetrics is the compiler slice of a Metrics snapshot.
type JITMetrics struct {
	Compiles             uint64                      `json:"compiles"`
	CompileTime          telemetry.HistogramSnapshot `json:"compile_time"`
	CodeCacheMemHits     uint64                      `json:"code_cache_mem_hits"`
	CodeCachePersistHits uint64                      `json:"code_cache_persist_hits"`
	MorselsInterpreted   uint64                      `json:"morsels_interpreted"`
	MorselsCompiled      uint64                      `json:"morsels_compiled"`
	Switchovers          uint64                      `json:"switchovers"`
}

// ShardMetrics is one core shard's slice of a Metrics snapshot.
type ShardMetrics struct {
	// Commits counts commits whose lock set included the shard.
	Commits uint64 `json:"commits"`
	// LockWaitNs is the cumulative wait for the shard's commit lock.
	LockWaitNs uint64 `json:"lock_wait_ns"`
	// LockContended counts commit-lock acquisitions that found the lock
	// held (TryLock misses) — a scheduling-independent contention measure.
	LockContended uint64 `json:"lock_contended"`
	// Inserts counts records placed in the shard at operation time.
	Inserts uint64 `json:"inserts"`
}

// Metrics is a structured snapshot of every engine counter. PMem device
// stats, statement-cache stats, graph sizes and shard stats are live
// regardless of TelemetryConfig.Enabled; the rest require telemetry
// (Enabled reports which case this snapshot is).
type Metrics struct {
	Enabled        bool               `json:"enabled"`
	PMem           pmem.StatsSnapshot `json:"pmem"`
	Tx             TxMetrics          `json:"tx"`
	Query          QueryMetrics       `json:"query"`
	JIT            JITMetrics         `json:"jit"`
	StmtCache      CacheStats         `json:"stmt_cache"`
	SessionsActive int64              `json:"sessions_active"`
	Nodes          uint64             `json:"nodes"`
	Rels           uint64             `json:"rels"`
	// Shards holds per-shard contention and balance counters; its length
	// is the engine's configured shard count.
	Shards []ShardMetrics `json:"shards"`
	// CrossShardCommits counts commits spanning more than one shard.
	CrossShardCommits uint64 `json:"cross_shard_commits"`
	// Server holds the network-server counters when a front door has
	// registered itself (see RegisterServer); nil otherwise.
	Server *ServerMetrics `json:"server,omitempty"`
}

// Metrics returns a structured snapshot of the engine's counters. It is
// valid on a telemetry-disabled DB too: the always-on subsystem stats
// (pmem device, statement cache, graph sizes) are filled and Enabled is
// false.
func (db *DB) Metrics() Metrics {
	m := Metrics{
		PMem:      db.engine.Device().Stats.Snapshot(),
		StmtCache: db.stmts.stats(),
		Nodes:     db.engine.NodeCount(),
		Rels:      db.engine.RelCount(),
	}
	m.Tx.Active = db.engine.ActiveTxs()
	shardStats, cross := db.engine.ShardStatsSnapshot()
	m.Shards = make([]ShardMetrics, len(shardStats))
	for s, st := range shardStats {
		m.Shards[s] = ShardMetrics{
			Commits: st.Commits, LockWaitNs: st.LockWaitNs,
			LockContended: st.LockContended, Inserts: st.HomeInserts,
		}
	}
	m.CrossShardCommits = cross
	t := db.tel
	if t == nil {
		return m
	}
	m.Enabled = true
	m.SessionsActive = t.sessionsActive.Value()
	m.Tx.Begun = t.coreTel.TxBegun.Value()
	m.Tx.Commits = t.coreTel.TxCommits.Value()
	m.Tx.Aborts = make(map[string]uint64, core.NumAbortReasons)
	for r := 0; r < core.NumAbortReasons; r++ {
		m.Tx.Aborts[core.AbortReason(r).String()] = t.coreTel.TxAborts[r].Value()
	}
	m.Tx.ChainWalk = t.coreTel.ChainWalk.Snapshot()
	m.Query.ByMode = make(map[string]uint64, len(t.queriesTotal))
	for mode := Interpret; mode <= Adaptive; mode++ {
		v := t.queriesTotal[mode].Value()
		m.Query.ByMode[mode.String()] = v
		m.Query.Count += v
	}
	m.Query.Errors = t.queryErrors.Value()
	m.Query.Rows = t.rowsStreamed.Value()
	m.Query.Slow = t.slowQueries.Value()
	m.Query.Latency = t.queryLatency.Snapshot()
	m.JIT.Compiles = t.jitTel.Compiles.Value()
	m.JIT.CompileTime = t.jitTel.CompileTime.Snapshot()
	m.JIT.CodeCacheMemHits = t.jitTel.MemHits.Value()
	m.JIT.CodeCachePersistHits = t.jitTel.PersistHits.Value()
	m.JIT.MorselsInterpreted = t.jitTel.MorselsInterpreted.Value()
	m.JIT.MorselsCompiled = t.jitTel.MorselsCompiled.Value()
	m.JIT.Switchovers = t.jitTel.Switchovers.Value()
	if sv := t.server; sv != nil {
		sm := &ServerMetrics{
			ConnsOpen:        sv.ConnsOpen.Value(),
			InflightStmts:    sv.InflightStmts.Value(),
			AdmissionRejects: sv.AdmissionRejects.Value(),
			MsgLatency:       make(map[string]telemetry.HistogramSnapshot, len(sv.MsgLatency)),
		}
		for mt, h := range sv.MsgLatency {
			sm.MsgLatency[mt] = h.Snapshot()
		}
		m.Server = sm
	}
	return m
}

// MetricsHandler returns an http.Handler serving the Prometheus text
// exposition of every registered metric. On a telemetry-disabled DB it
// answers 503, so probes can distinguish "off" from "empty".
func (db *DB) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if db.tel == nil {
			http.Error(w, "telemetry disabled (set Config.Telemetry.Enabled)", http.StatusServiceUnavailable)
			return
		}
		db.tel.reg.Handler().ServeHTTP(w, r)
	})
}

// DebugMux returns a mux with /metrics (see MetricsHandler) and the
// standard pprof handlers under /debug/pprof/. Mount it on an opt-in
// listener:
//
//	go http.ListenAndServe("localhost:6060", db.DebugMux())
func (db *DB) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", db.MetricsHandler())
	mux.Handle("/debug/traces", trace.Handler(db.tracer))
	telemetry.MountPprof(mux)
	return mux
}

// SlowQueries returns the retained slow-query traces, newest first, or
// nil when telemetry is disabled.
func (db *DB) SlowQueries() []telemetry.QueryTrace {
	if db.tel == nil {
		return nil
	}
	return db.tel.slow.Entries()
}

// SlowQueryThreshold reports the active slow-query threshold (0 when
// telemetry is disabled).
func (db *DB) SlowQueryThreshold() time.Duration {
	if db.tel == nil {
		return 0
	}
	return db.tel.slow.Threshold()
}
