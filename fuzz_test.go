package poseidon

import (
	"sync"
	"testing"
)

// fuzzDB lazily opens one shared DRAM database for FuzzPrepare: parsing
// and planning are read-only over the schema, so a single instance keeps
// per-input cost at prepare-time only.
var fuzzDB = struct {
	once sync.Once
	db   *DB
	err  error
}{}

func sharedFuzzDB() (*DB, error) {
	fuzzDB.once.Do(func() {
		db, err := Open(Config{Mode: DRAM, PoolSize: 16 << 20})
		if err != nil {
			fuzzDB.err = err
			return
		}
		seed := `CREATE (a:Person {id: 1, name: 'ada', age: 36})`
		if _, err := db.Cypher(seed, nil); err != nil {
			fuzzDB.err = err
			return
		}
		if err := db.CreateIndex("Person", "id", HybridIndex); err != nil {
			fuzzDB.err = err
			return
		}
		fuzzDB.db = db
	})
	return fuzzDB.db, fuzzDB.err
}

// FuzzPrepare pushes arbitrary source through the full prepare pipeline
// (parse, plan, bind to the engine, statement-cache insert). Any input
// may be rejected with an error; none may panic.
func FuzzPrepare(f *testing.F) {
	for _, src := range []string{
		`MATCH (p:Person) RETURN p.name`,
		`MATCH (p:Person {id: $id}) RETURN p.name, p.age`,
		`MATCH (p:Person {id: 1})-[:knows]->(f) RETURN f.name`,
		`MATCH (p:Person) WHERE p.age > $min RETURN p.name ORDER BY p.age DESC LIMIT 5`,
		`MATCH (p:Person)-[:knows]->(f) RETURN COUNT(*)`,
		`CREATE (x:Person {id: 2, name: 'eve'})`,
		`MATCH (p:Person {id: 1}) SET p.age = $age`,
		`MATCH (p:Person {id: 1}) DETACH DELETE p`,
		`MATCH (p:Person RETURN p`,
		`RETURN`,
	} {
		f.Add(src)
	}
	f.Fuzz(func(t *testing.T, src string) {
		db, err := sharedFuzzDB()
		if err != nil {
			t.Skipf("shared fuzz db unavailable: %v", err)
		}
		st, err := db.Prepare(src)
		if err == nil && st == nil {
			t.Fatalf("Prepare(%q) = nil statement, nil error", src)
		}
	})
}
