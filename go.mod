module poseidon

go 1.22
