package poseidon

import (
	"time"

	"poseidon/internal/trace"
)

// TraceConfig enables and tunes per-request tracing (see
// internal/trace): spans following one statement from the wire (or the
// local session) through admission, session dispatch, interpreter/JIT
// execution, per-shard commit locking and pmem flush batches. Disabled
// by default; when off, the DB holds a nil *trace.Tracer and every
// instrumented call site no-ops through the nil handle.
type TraceConfig struct {
	// Enabled turns request tracing on.
	Enabled bool
	// RingSize bounds the retained-trace ring (default 256).
	RingSize int
	// SampleRate is the probability an unremarkable trace is retained
	// after it finishes — tail sampling, so errored and slow traces are
	// always kept regardless (default 0.1).
	SampleRate float64
	// SlowThreshold pins traces at least this slow. Defaults to the
	// telemetry SlowQueryThreshold so slow-query log entries and pinned
	// traces agree on "slow".
	SlowThreshold time.Duration
}

// newTracer builds the DB's tracer, or nil when tracing is disabled.
func newTracer(cfg TelemetryConfig) *trace.Tracer {
	if !cfg.Trace.Enabled {
		return nil
	}
	slow := cfg.Trace.SlowThreshold
	if slow == 0 {
		slow = cfg.SlowQueryThreshold
		if slow == 0 {
			slow = defaultSlowQueryThreshold
		}
	}
	return trace.New(trace.Config{
		RingSize:      cfg.Trace.RingSize,
		SampleRate:    cfg.Trace.SampleRate,
		SlowThreshold: slow,
	})
}

// installTracer pushes the trace handle into the engine layers that
// cannot see the context at span-creation time, and registers the
// tracer's lifetime counters on the telemetry registry.
func (db *DB) installTracer() {
	if db.tracer == nil {
		return
	}
	if db.tel != nil {
		tr := db.tracer
		reg := db.tel.reg
		reg.CounterFunc("poseidon_traces_started_total", "Request traces started.",
			func() uint64 { s, _, _, _ := tr.Stats(); return s })
		reg.CounterFunc("poseidon_traces_kept_total", "Request traces retained in the trace ring.",
			func() uint64 { _, k, _, _ := tr.Stats(); return k })
		reg.CounterFunc("poseidon_traces_sampled_out_total", "Unremarkable traces dropped by tail sampling.",
			func() uint64 { _, _, s, _ := tr.Stats(); return s })
		reg.CounterFunc("poseidon_traces_dropped_total", "Traces dropped because the ring held only pinned traces.",
			func() uint64 { _, _, _, d := tr.Stats(); return d })
	}
}

// Tracer exposes the DB's request tracer; nil when tracing is disabled.
// The handle is nil-safe, so callers may use it unconditionally.
func (db *DB) Tracer() *trace.Tracer { return db.tracer }

// Traces returns the retained (tail-sampled) traces, oldest first, or
// nil when tracing is disabled.
func (db *DB) Traces() []*trace.Trace { return db.tracer.Traces() }
