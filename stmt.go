package poseidon

import (
	"context"
	"fmt"

	"poseidon/internal/cypher"
	"poseidon/internal/query"
)

// Stmt is a prepared statement: a query parsed and planned exactly once,
// with the interpreter cascade pre-linked. Statements are cached in the
// DB (see CacheStats) and are safe to share across sessions and
// goroutines; per-execution state lives in the transaction and the
// parameter bindings, never in the statement.
type Stmt struct {
	db       *DB
	plan     *query.Plan
	prepared *query.Prepared
	text     string // Cypher source, empty for plan-built statements
}

// Plan exposes the statement's algebra plan.
func (s *Stmt) Plan() *query.Plan { return s.plan }

// Text returns the Cypher source the statement was prepared from, or ""
// if it was built from a plan directly.
func (s *Stmt) Text() string { return s.text }

// Signature returns the plan signature, which doubles as the JIT
// code-cache key.
func (s *Stmt) Signature() string { return s.plan.Signature() }

// Prepare parses, plans and caches a Cypher statement. The cache key is
// a whitespace/keyword-case-normalized fingerprint of the source, so the
// same statement formatted differently still hits. Parameters ($name)
// are bound at execution time; preparing once and running many times
// costs one parse/plan total.
func (db *DB) Prepare(src string) (*Stmt, error) {
	fp, err := cypher.Fingerprint(src)
	if err != nil {
		return nil, err
	}
	key := "cypher:" + fp
	if st, ok := db.stmts.get(key); ok {
		return st, nil
	}
	plan, err := cypher.Plan(db.engine, src)
	if err != nil {
		return nil, err
	}
	pr, err := query.Prepare(db.engine, plan)
	if err != nil {
		return nil, err
	}
	return db.stmts.put(key, &Stmt{db: db, plan: plan, prepared: pr, text: src}), nil
}

// PreparePlan caches an algebra plan as a statement, keyed by its
// signature. Plans with identical structure (parameters contribute names,
// not values) share one prepared statement.
func (db *DB) PreparePlan(plan *query.Plan) (*Stmt, error) {
	key := "plan:" + plan.Signature()
	if st, ok := db.stmts.get(key); ok {
		return st, nil
	}
	pr, err := query.Prepare(db.engine, plan)
	if err != nil {
		return nil, err
	}
	return db.stmts.put(key, &Stmt{db: db, plan: plan, prepared: pr}), nil
}

// CacheStats returns hit/miss/eviction counters for the shared
// prepared-statement cache.
func (db *DB) CacheStats() CacheStats { return db.stmts.stats() }

// run executes the statement in tx under the given mode, pushing raw
// rows to emit. The context cancels execution between records.
func (s *Stmt) run(ctx context.Context, tx *Tx, params query.Params, mode ExecMode, workers int, emit func(query.Row) bool) error {
	switch mode {
	case Interpret:
		return s.prepared.RunCtx(ctx, tx, params, emit)
	case Parallel:
		return s.prepared.RunParallelCtx(ctx, tx, params, workers, emit)
	case JIT:
		_, err := s.db.jit.RunCtx(ctx, tx, s.plan, params, emit)
		return err
	case Adaptive:
		_, err := s.db.jit.RunAdaptiveCtx(ctx, tx, s.plan, params, workers, emit)
		return err
	default:
		return fmt.Errorf("poseidon: unknown execution mode %d", mode)
	}
}
