package poseidon

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"poseidon/internal/cypher"
	"poseidon/internal/jit"
	"poseidon/internal/query"
	"poseidon/internal/trace"
)

// Stmt is a prepared statement: a query parsed and planned exactly once,
// with the interpreter cascade pre-linked. Statements are cached in the
// DB (see CacheStats) and are safe to share across sessions and
// goroutines; per-execution state lives in the transaction and the
// parameter bindings, never in the statement.
type Stmt struct {
	db       *DB
	plan     *query.Plan
	prepared *query.Prepared
	text     string        // Cypher source, empty for plan-built statements
	prepTime time.Duration // parse + plan + prepare cost, paid once
}

// Plan exposes the statement's algebra plan.
func (s *Stmt) Plan() *query.Plan { return s.plan }

// Text returns the Cypher source the statement was prepared from, or ""
// if it was built from a plan directly.
func (s *Stmt) Text() string { return s.text }

// Signature returns the plan signature, which doubles as the JIT
// code-cache key.
func (s *Stmt) Signature() string { return s.plan.Signature() }

// Prepare parses, plans and caches a Cypher statement. The cache key is
// a whitespace/keyword-case-normalized fingerprint of the source, so the
// same statement formatted differently still hits. Parameters ($name)
// are bound at execution time; preparing once and running many times
// costs one parse/plan total.
func (db *DB) Prepare(src string) (*Stmt, error) {
	fp, err := cypher.Fingerprint(src)
	if err != nil {
		return nil, err
	}
	key := "cypher:" + fp
	if st, ok := db.stmts.get(key); ok {
		return st, nil
	}
	start := time.Now()
	plan, err := cypher.Plan(db.engine, src)
	if err != nil {
		return nil, err
	}
	pr, err := query.Prepare(db.engine, plan)
	if err != nil {
		return nil, err
	}
	st := &Stmt{db: db, plan: plan, prepared: pr, text: src, prepTime: time.Since(start)}
	return db.stmts.put(key, st), nil
}

// PreparePlan caches an algebra plan as a statement, keyed by its
// signature. Plans with identical structure (parameters contribute names,
// not values) share one prepared statement.
func (db *DB) PreparePlan(plan *query.Plan) (*Stmt, error) {
	key := "plan:" + plan.Signature()
	if st, ok := db.stmts.get(key); ok {
		return st, nil
	}
	start := time.Now()
	pr, err := query.Prepare(db.engine, plan)
	if err != nil {
		return nil, err
	}
	st := &Stmt{db: db, plan: plan, prepared: pr, prepTime: time.Since(start)}
	return db.stmts.put(key, st), nil
}

// CacheStats returns hit/miss/eviction counters for the shared
// prepared-statement cache.
func (db *DB) CacheStats() CacheStats { return db.stmts.stats() }

// run executes the statement in tx under the given mode, pushing raw
// rows to emit. The context cancels execution between records.
//
// This is the single funnel every execution path goes through —
// facade shims, sessions and streaming cursors alike — which makes it
// the one place query telemetry is observed. With telemetry disabled
// (db.tel == nil) the statement runs with zero instrumentation.
func (s *Stmt) run(ctx context.Context, tx *Tx, params query.Params, mode ExecMode, workers int, emit func(query.Row) bool) error {
	tel := s.db.tel
	queryText := s.text
	if queryText == "" {
		queryText = s.plan.Signature()
	}
	// Request tracing: continue the caller's trace (server wire span or
	// session span) or, on a bare context with tracing enabled, root a
	// fresh trace here so legacy facade paths are traced too.
	var span *trace.Span
	var traceID string
	if tracer := s.db.tracer; tracer != nil {
		if parent := trace.FromContext(ctx); parent != nil {
			span = parent.Child("stmt.run", trace.KindSession)
			ctx = trace.ContextWithSpan(ctx, span)
		} else {
			ctx, span = tracer.Start(ctx, "stmt.run", trace.KindSession)
		}
		span.SetAttr("query", queryText)
		span.SetAttr("mode", mode.String())
		traceID = trace.FormatID(span.TraceID())
	}
	if tel == nil && span == nil {
		_, err := s.runInner(ctx, tx, params, mode, workers, emit)
		return err
	}
	stats := &s.db.engine.Device().Stats
	pre := stats.Snapshot()
	var rows atomic.Int64 // parallel workers may race on emit's wrapper
	counted := func(r query.Row) bool {
		rows.Add(1)
		return emit(r)
	}
	start := time.Now()
	st, err := s.runInner(ctx, tx, params, mode, workers, counted)
	total := time.Since(start)
	span.SetAttr("rows", rows.Load())
	if st.CompileTime > 0 {
		span.SetAttr("compile_ns", int64(st.CompileTime))
	}
	span.SetError(err)
	span.End()
	// The device delta over-attributes under concurrency (other queries
	// share the device); it is a locality signal, not an exact charge.
	tel.observeQuery(queryText, traceID, mode, start, total, s.prepTime, st,
		rows.Load(), stats.Snapshot().Sub(pre), err)
	return err
}

// runInner dispatches to the mode's executor, returning the JIT cost
// breakdown when one exists (zero for the interpreted modes).
func (s *Stmt) runInner(ctx context.Context, tx *Tx, params query.Params, mode ExecMode, workers int, emit func(query.Row) bool) (jit.RunStats, error) {
	var st jit.RunStats
	switch mode {
	case Interpret:
		ectx, esp := trace.StartSpan(ctx, "query.interpret", trace.KindExec)
		err := s.prepared.RunCtx(ectx, tx, params, emit)
		esp.SetError(err)
		esp.End()
		return st, err
	case Parallel:
		ectx, esp := trace.StartSpan(ctx, "query.parallel", trace.KindExec)
		esp.SetAttr("workers", int64(workers))
		err := s.prepared.RunParallelCtx(ectx, tx, params, workers, emit)
		esp.SetError(err)
		esp.End()
		return st, err
	case JIT:
		// jit.RunCtx creates its own compile/exec spans from ctx.
		return s.db.jit.RunCtx(ctx, tx, s.plan, params, emit)
	case Adaptive:
		return s.db.jit.RunAdaptiveCtx(ctx, tx, s.plan, params, workers, emit)
	default:
		return st, fmt.Errorf("poseidon: unknown execution mode %d", mode)
	}
}
