package poseidon

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"poseidon/internal/core"
	"poseidon/internal/query"
)

// TestStmtCacheSingleParse: running the same Cypher twice — even with
// different formatting and keyword case — costs exactly one parse/plan.
func TestStmtCacheSingleParse(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	src := `MATCH (p:Person {name: $n}) RETURN p.age`
	if _, err := db.Cypher(src, query.Params{"n": "alice"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Cypher(src, query.Params{"n": "bob"}); err != nil {
		t.Fatal(err)
	}
	// Same statement, reformatted: the fingerprint normalizes it.
	if _, err := db.Cypher("match  (p:Person\n{name: $n})  return p.age", query.Params{"n": "carol"}); err != nil {
		t.Fatal(err)
	}
	st := db.CacheStats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (stats %+v)", st.Misses, st)
	}
	if st.Hits < 2 {
		t.Errorf("hits = %d, want >= 2", st.Hits)
	}
	if st.Size != 1 {
		t.Errorf("size = %d, want 1", st.Size)
	}
}

// TestPreparePlanCache: plan-built statements share by signature.
func TestPreparePlanCache(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	s1, err := db.PreparePlan(friendsPlan())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := db.PreparePlan(friendsPlan())
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("equal plans produced distinct statements")
	}
	if st := db.CacheStats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss / 1 hit", st)
	}
}

// TestStmtCacheEviction: the LRU bound holds and evictions are counted.
func TestStmtCacheEviction(t *testing.T) {
	db, err := Open(Config{Mode: DRAM, StmtCacheSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	for _, label := range []string{"A", "B", "C"} {
		if _, err := db.PreparePlan(&query.Plan{Root: &query.NodeScan{Label: label}}); err != nil {
			t.Fatal(err)
		}
	}
	st := db.CacheStats()
	if st.Size != 2 || st.Evictions != 1 {
		t.Errorf("stats = %+v, want size 2 / 1 eviction", st)
	}
	// A was least recently used and must re-plan.
	if _, err := db.PreparePlan(&query.Plan{Root: &query.NodeScan{Label: "A"}}); err != nil {
		t.Fatal(err)
	}
	if st := db.CacheStats(); st.Misses != 4 {
		t.Errorf("misses = %d, want 4 (evicted entry re-planned)", st.Misses)
	}
}

// TestCreateIndexInvalidatesStmts: index creation changes the planner's
// access-path choice, so cached statements are dropped and the next
// Prepare picks the index.
func TestCreateIndexInvalidatesStmts(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	src := `MATCH (p:Person {name: $n}) RETURN p.age`
	before, err := db.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(before.Signature(), "IndexScan") {
		t.Fatalf("pre-index plan already uses an index: %s", before.Signature())
	}
	if err := db.CreateIndex("Person", "name", HybridIndex); err != nil {
		t.Fatal(err)
	}
	if st := db.CacheStats(); st.Size != 0 {
		t.Errorf("cache size = %d after CreateIndex, want 0", st.Size)
	}
	after, err := db.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(after.Signature(), "IndexScan") {
		t.Errorf("post-index plan still scans: %s", after.Signature())
	}
}

// TestUpdateGuard: update plans on always-rolled-back entry points fail
// loudly instead of silently discarding the writes.
func TestUpdateGuard(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	create := &query.Plan{Root: &query.CreateNode{Label: "Person", Props: []query.PropSpec{
		{Key: "name", Val: &query.Const{Val: "ghost"}},
	}}}
	if _, err := db.Query(create, nil); !errors.Is(err, ErrUpdatePlan) {
		t.Fatalf("Query: err = %v, want ErrUpdatePlan", err)
	}
	if _, err := db.QueryMode(create, nil, Parallel); !errors.Is(err, ErrUpdatePlan) {
		t.Fatalf("QueryMode: err = %v, want ErrUpdatePlan", err)
	}
	sess := db.NewSession(SessionConfig{})
	defer sess.Close()
	stmt, err := db.PreparePlan(create)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(context.Background(), stmt, nil); !errors.Is(err, ErrUpdatePlan) {
		t.Fatalf("Session.Query: err = %v, want ErrUpdatePlan", err)
	}
	if db.NodeCount() != 3 {
		t.Fatalf("a rejected update leaked: %d nodes", db.NodeCount())
	}
	// The same plan commits through the update paths.
	if n, err := db.Exec(create, nil); err != nil || n != 1 {
		t.Fatalf("Exec: n=%d err=%v", n, err)
	}
	if n, err := sess.Exec(context.Background(), stmt, nil); err != nil || n != 1 {
		t.Fatalf("Session.Exec: n=%d err=%v", n, err)
	}
	if db.NodeCount() != 5 {
		t.Fatalf("node count = %d, want 5", db.NodeCount())
	}
}

// TestStreamedMatchesMaterialized: the Rows cursor yields exactly what
// the materialized path does, in every execution mode.
func TestStreamedMatchesMaterialized(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedPeople(t, db, 1000)
	plan := scanAllPlan()
	want, err := db.Query(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 1000 {
		t.Fatalf("materialized %d rows", len(want))
	}
	stmt, err := db.PreparePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	for _, em := range []ExecMode{Interpret, Parallel, JIT, Adaptive} {
		sess := db.NewSession(SessionConfig{Mode: em})
		rows, err := sess.Query(context.Background(), stmt, nil)
		if err != nil {
			t.Fatalf("mode %d: %v", em, err)
		}
		seen := make(map[int64]bool)
		n := 0
		for rows.Next() {
			var v int64
			if err := rows.Scan(&v); err != nil {
				t.Fatalf("mode %d: %v", em, err)
			}
			seen[v] = true
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("mode %d: %v", em, err)
		}
		rows.Close()
		if n != len(want) || len(seen) != len(want) {
			t.Fatalf("mode %d: streamed %d rows (%d distinct), want %d", em, n, len(seen), len(want))
		}
		sess.Close()
	}
}

// TestSessionTimeoutUnexpired: a query that finishes well within the
// session deadline must not report the timer's own cancellation as an
// error (regression: the producer read ctx.Err after releasing the
// deadline timer).
func TestSessionTimeoutUnexpired(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	sess := db.NewSession(SessionConfig{Timeout: time.Minute})
	defer sess.Close()
	stmt := mustPrepare(t, db, `MATCH (p:Person) RETURN p.name`)
	rows, err := sess.QueryAll(context.Background(), stmt, nil)
	if err != nil {
		t.Fatalf("QueryAll: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
}

// TestRowsEarlyClose: closing a cursor mid-result aborts its transaction
// and reports no error.
func TestRowsEarlyClose(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedPeople(t, db, 10000)
	stmt, err := db.PreparePlan(scanAllPlan())
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	sess := db.NewSession(SessionConfig{Mode: Parallel})
	defer sess.Close()
	rows, err := sess.Query(context.Background(), stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if rows.Next() {
		t.Error("Next returned true after Close")
	}
	if n := db.Engine().ActiveTxs(); n != 0 {
		t.Fatalf("%d transactions still active after Close", n)
	}
	waitGoroutines(t, base)
}

// TestSessionCloseReapsTxs: transactions a closed session owns are
// rolled back, and the session refuses further work.
func TestSessionCloseReapsTxs(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	sess := db.NewSession(SessionConfig{})
	tx, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateNode("Person", map[string]any{"name": "orphan"}); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("Commit after session close: %v, want ErrTxDone", err)
	}
	if db.NodeCount() != 3 {
		t.Fatalf("orphan write survived: %d nodes", db.NodeCount())
	}
	if _, err := sess.Begin(); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Begin on closed session: %v", err)
	}
	if _, err := sess.Query(context.Background(), mustPrepare(t, db, `MATCH (p:Person) RETURN p.name`), nil); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Query on closed session: %v", err)
	}
}

func mustPrepare(t *testing.T, db *DB, src string) *Stmt {
	t.Helper()
	stmt, err := db.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// TestSessionQueryTx: a statement streamed inside a caller-managed
// transaction observes its uncommitted writes.
func TestSessionQueryTx(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	sess := db.NewSession(SessionConfig{})
	defer sess.Close()
	tx, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.CreateNode("Person", map[string]any{"name": "dora", "age": int64(99)}); err != nil {
		t.Fatal(err)
	}
	stmt := mustPrepare(t, db, `MATCH (p:Person {name: 'dora'}) RETURN p.age`)
	rows, err := sess.QueryTx(context.Background(), tx, stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rows.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != int64(99) {
		t.Fatalf("rows = %v", got)
	}
	// The cursor did not end the transaction: it still commits.
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if db.NodeCount() != 4 {
		t.Fatalf("node count = %d", db.NodeCount())
	}
}

// TestSessionCloseWithInflightRows: closing the session under a cursor
// that is mid-stream aborts the backing transaction; the cursor
// surfaces ErrTxDone (or session-closed) at its next record rather
// than wedging or leaking the transaction.
func TestSessionCloseWithInflightRows(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	sess := db.NewSession(SessionConfig{})
	stmt := mustPrepare(t, db, `MATCH (p:Person) RETURN p.name`)
	rows, err := sess.Query(context.Background(), stmt, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pull one record so the producer goroutine is demonstrably live.
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	// Drain whatever was already in flight; the stream must terminate.
	for rows.Next() {
	}
	if err := rows.Err(); err != nil && !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("rows.Err after session close = %v", err)
	}
	if err := rows.Close(); err != nil && !errors.Is(err, core.ErrTxDone) {
		t.Fatalf("rows.Close after session close = %v", err)
	}
}

// TestSessionMaxTxs: the transaction bound rejects Begin, Query and
// Exec with ErrSessionLimit once the session owns MaxTxs live
// transactions, and frees capacity when one ends.
func TestSessionMaxTxs(t *testing.T) {
	db := openTestDB(t, DRAM)
	seedSocial(t, db)
	sess := db.NewSession(SessionConfig{MaxTxs: 2})
	defer sess.Close()

	tx1, err := sess.Begin()
	if err != nil {
		t.Fatal(err)
	}
	stmt := mustPrepare(t, db, `MATCH (p:Person) RETURN p.name`)
	rows, err := sess.Query(context.Background(), stmt, nil) // second tx
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Begin(); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("Begin over limit = %v, want ErrSessionLimit", err)
	}
	if _, err := sess.Query(context.Background(), stmt, nil); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("Query over limit = %v, want ErrSessionLimit", err)
	}
	if _, err := sess.Exec(context.Background(), stmt, nil); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("Exec over limit = %v, want ErrSessionLimit", err)
	}
	// Finishing the cursor releases its transaction: capacity returns.
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	tx2, err := sess.Begin()
	if err != nil {
		t.Fatalf("Begin after release: %v", err)
	}
	tx2.Abort()
	tx1.Abort()
}

// TestSessionMaxTxsConcurrentBegin: hammering Begin from many
// goroutines never lets the session exceed its bound — successes plus
// the live set stay consistent under the race.
func TestSessionMaxTxsConcurrentBegin(t *testing.T) {
	db := openTestDB(t, DRAM)
	const limit = 4
	sess := db.NewSession(SessionConfig{MaxTxs: limit})
	defer sess.Close()

	const goroutines = 32
	var (
		mu   sync.Mutex
		held []*Tx
	)
	var wg sync.WaitGroup
	var limited atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx, err := sess.Begin()
				if errors.Is(err, ErrSessionLimit) {
					limited.Add(1)
					// Free capacity so other goroutines make progress.
					mu.Lock()
					if n := len(held); n > 0 {
						victim := held[n-1]
						held = held[:n-1]
						mu.Unlock()
						victim.Abort()
					} else {
						mu.Unlock()
					}
					continue
				}
				if err != nil {
					t.Errorf("Begin: %v", err)
					return
				}
				mu.Lock()
				if len(held) >= limit {
					mu.Unlock()
					t.Errorf("session exceeded MaxTxs: %d live", len(held)+1)
					tx.Abort()
					return
				}
				held = append(held, tx)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if limited.Load() == 0 {
		t.Fatal("ErrSessionLimit never observed under contention")
	}
	for _, tx := range held {
		tx.Abort()
	}
}
